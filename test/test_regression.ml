(* Golden-value regression tests: pin the reproduced paper results so
   that any future numerical drift is caught. The golden numbers were
   produced by this implementation and cross-checked against the
   paper's reported values (see EXPERIMENTS.md). *)

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let paper_model ~servers ~lambda =
  Urs.Model.create ~servers ~arrival_rate:lambda ~service_rate:1.0
    ~operative:Urs.Model.paper_operative
    ~inoperative:Urs.Model.paper_inoperative_exp ()

let solve ~servers ~lambda = Urs.Solver.evaluate_exn (paper_model ~servers ~lambda)

let test_golden_queue_lengths () =
  (* spot values across the size range used by the figures *)
  check_float ~tol:1e-5 "N=5 λ=4" 6.23850 (solve ~servers:5 ~lambda:4.0).Urs.Solver.mean_jobs;
  check_float ~tol:1e-4 "N=10 λ=8" 9.6568 (solve ~servers:10 ~lambda:8.0).Urs.Solver.mean_jobs;
  check_float ~tol:1e-4 "N=12 λ=8" 8.2835 (solve ~servers:12 ~lambda:8.0).Urs.Solver.mean_jobs;
  check_float ~tol:1e-4 "N=17 λ=8" 8.0037 (solve ~servers:17 ~lambda:8.0).Urs.Solver.mean_jobs

let test_golden_dominant_eigenvalue () =
  let p = solve ~servers:10 ~lambda:8.0 in
  match p.Urs.Solver.dominant_eigenvalue with
  | Some z -> check_float ~tol:1e-5 "z_s at N=10 λ=8" 0.80095 z
  | None -> Alcotest.fail "missing eigenvalue"

let test_golden_figure5_costs () =
  (* the cost minima underpinning Figure 5's optima *)
  let cost lambda n =
    let p = solve ~servers:n ~lambda in
    Urs.Cost.of_performance Urs.Cost.paper_params ~servers:n p
  in
  check_float ~tol:0.01 "λ=7 N=11" 39.86 (cost 7.0 11);
  check_float ~tol:0.01 "λ=8 N=12" 45.13 (cost 8.0 12);
  check_float ~tol:0.01 "λ=8.5 N=13" 47.85 (cost 8.5 13)

let test_golden_figure5_optima () =
  List.iter
    (fun (lambda, expected) ->
      match
        Urs.Cost.optimal_servers ~n_max:25 (paper_model ~servers:10 ~lambda)
          Urs.Cost.paper_params
      with
      | Ok (n, _) -> Alcotest.(check int) (Printf.sprintf "λ=%.1f" lambda) expected n
      | Error e -> Alcotest.failf "λ=%.1f failed: %a" lambda Urs.Solver.pp_error e)
    [ (7.0, 11); (8.0, 12); (8.5, 13) ]

let test_golden_figure9 () =
  check_float ~tol:1e-3 "W at N=8" 2.6519
    (solve ~servers:8 ~lambda:7.5).Urs.Solver.mean_response;
  check_float ~tol:1e-3 "W at N=9" 1.3437
    (solve ~servers:9 ~lambda:7.5).Urs.Solver.mean_response;
  match
    Urs.Capacity.min_servers_for_response (paper_model ~servers:8 ~lambda:7.5)
      ~target:1.5
  with
  | Ok (n, _) -> Alcotest.(check int) "min N for W<=1.5" 9 n
  | Error e -> Alcotest.failf "capacity failed: %a" Urs.Solver.pp_error e

let test_golden_figure7_endpoints () =
  (* exponential vs H2 operative periods at 1/η = 5 (the figure's right
     edge, where the models diverge most) *)
  let h2 =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.2) ()
  in
  let expo =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.exponential ~rate:0.0289)
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.2) ()
  in
  check_float ~tol:5e-3 "H2 operative" 24.488
    (Urs.Solver.evaluate_exn h2).Urs.Solver.mean_jobs;
  check_float ~tol:5e-3 "exp operative" 20.329
    (Urs.Solver.evaluate_exn expo).Urs.Solver.mean_jobs

let test_golden_section2_decisions () =
  (* the synthetic log is deterministic (seed 2006): the KS statistics
     are exactly reproducible *)
  let events = Urs_dataset.Generate.generate Urs_dataset.Generate.default in
  match Urs_dataset.Pipeline.analyze events with
  | Error e -> Alcotest.failf "pipeline failed: %a" Urs_prob.Fit.pp_error e
  | Ok r ->
      let op = r.Urs_dataset.Pipeline.operative in
      check_float ~tol:1e-3 "operative exp D" 0.4803
        op.Urs_dataset.Pipeline.exponential_ks.Urs_prob.Ks.statistic;
      check_float ~tol:1e-3 "operative H2 D" 0.1222
        op.Urs_dataset.Pipeline.h2_ks.Urs_prob.Ks.statistic;
      Alcotest.(check int) "anomalies" 4868 r.Urs_dataset.Pipeline.cleaned.Urs_dataset.Clean.anomalies

let test_solver_determinism () =
  let a = solve ~servers:7 ~lambda:5.5 in
  let b = solve ~servers:7 ~lambda:5.5 in
  check_float "deterministic L" a.Urs.Solver.mean_jobs b.Urs.Solver.mean_jobs;
  match (a.Urs.Solver.dominant_eigenvalue, b.Urs.Solver.dominant_eigenvalue) with
  | Some x, Some y -> check_float "deterministic z_s" x y
  | _ -> Alcotest.fail "missing eigenvalues"

let () =
  Alcotest.run "urs_regression"
    [
      ( "golden values",
        [
          Alcotest.test_case "queue lengths" `Quick test_golden_queue_lengths;
          Alcotest.test_case "dominant eigenvalue" `Quick
            test_golden_dominant_eigenvalue;
          Alcotest.test_case "figure 5 costs" `Quick test_golden_figure5_costs;
          Alcotest.test_case "figure 5 optima" `Slow test_golden_figure5_optima;
          Alcotest.test_case "figure 9" `Quick test_golden_figure9;
          Alcotest.test_case "figure 7 endpoints" `Quick
            test_golden_figure7_endpoints;
          Alcotest.test_case "section 2 decisions" `Slow
            test_golden_section2_decisions;
          Alcotest.test_case "solver determinism" `Quick test_solver_determinism;
        ] );
    ]
