(* Tests for the Markov-modulated queue machinery: environment
   enumeration (§3), QBD blocks, the spectral-expansion solver (§3.1),
   the geometric approximation (§3.2), the matrix-geometric
   cross-check, stability (eq. 11) and the M/M/c baseline. *)

open Urs_mmq
module H = Urs_prob.Hyperexponential
module M = Urs_linalg.Matrix
module V = Urs_linalg.Vec
module Cx = Urs_linalg.Cx

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let paper_operative = H.of_pairs [ (0.7246, 0.1663); (0.2754, 0.0091) ]

let exp_dist rate = H.create ~weights:[| 1.0 |] ~rates:[| rate |]

let paper_env ~servers =
  Environment.create ~servers ~operative:paper_operative
    ~inoperative:(exp_dist 25.0)

let solve_exn q =
  match Spectral.solve q with
  | Ok sol -> sol
  | Error e -> Alcotest.failf "spectral solve failed: %a" Spectral.pp_error e

(* ---- Environment ---- *)

let test_mode_count_formula () =
  (* s = C(N+n+m-1, n+m-1), eq. (12) *)
  List.iter
    (fun (servers, n, m, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "N=%d n=%d m=%d" servers n m)
        expected
        (Environment.count_modes ~servers ~op_phases:n ~inop_phases:m))
    [ (2, 2, 1, 6); (10, 2, 1, 66); (17, 2, 1, 171); (3, 2, 2, 20); (1, 1, 1, 2) ]

let test_mode_enumeration_matches_count () =
  let op = H.create ~weights:[| 0.4; 0.6 |] ~rates:[| 0.5; 0.125 |] in
  let inop = H.create ~weights:[| 0.7; 0.3 |] ~rates:[| 2.0; 1.0 |] in
  let env = Environment.create ~servers:4 ~operative:op ~inoperative:inop in
  Alcotest.(check int) "enumerated = formula"
    (Environment.count_modes ~servers:4 ~op_phases:2 ~inop_phases:2)
    (Environment.num_modes env)

let test_mode_ordering_matches_paper () =
  (* §3.1 worked example: N=2, n=2, m=1 — the six modes in the paper's
     order *)
  let env = paper_env ~servers:2 in
  let expect =
    [|
      ([| 0; 0 |], [| 2 |]);
      ([| 1; 0 |], [| 1 |]);
      ([| 0; 1 |], [| 1 |]);
      ([| 2; 0 |], [| 0 |]);
      ([| 1; 1 |], [| 0 |]);
      ([| 0; 2 |], [| 0 |]);
    |]
  in
  Array.iteri
    (fun i (x, y) ->
      let md = Environment.mode env i in
      if md.Environment.x <> x || md.Environment.y <> y then
        Alcotest.failf "mode %d differs from the paper's enumeration" i)
    expect

let test_mode_index_roundtrip () =
  let env = paper_env ~servers:5 in
  for i = 0 to Environment.num_modes env - 1 do
    let md = Environment.mode env i in
    Alcotest.(check int) "roundtrip" i (Environment.index_of_mode env md)
  done

let test_transition_matrix_matches_paper_example () =
  (* the explicit 6x6 matrix A printed in §3.1, with
     ξ1=0.5, ξ2=0.125, η=2, α1=0.4, α2=0.6 *)
  let xi1 = 0.5 and xi2 = 0.125 and eta = 2.0 and a1 = 0.4 and a2 = 0.6 in
  let op = H.create ~weights:[| a1; a2 |] ~rates:[| xi1; xi2 |] in
  let env =
    Environment.create ~servers:2 ~operative:op ~inoperative:(exp_dist eta)
  in
  let a = Environment.transition_matrix env in
  let expected =
    M.of_arrays
      [|
        [| 0.0; 2.0 *. eta *. a1; 2.0 *. eta *. a2; 0.0; 0.0; 0.0 |];
        [| xi1; 0.0; 0.0; eta *. a1; eta *. a2; 0.0 |];
        [| xi2; 0.0; 0.0; 0.0; eta *. a1; eta *. a2 |];
        [| 0.0; 2.0 *. xi1; 0.0; 0.0; 0.0; 0.0 |];
        [| 0.0; xi2; xi1; 0.0; 0.0; 0.0 |];
        [| 0.0; 0.0; 2.0 *. xi2; 0.0; 0.0; 0.0 |];
      |]
  in
  Alcotest.(check bool) "A matches the paper" true (M.approx_equal a expected)

let test_availability () =
  let env = paper_env ~servers:10 in
  (* mean op 34.62, mean inop 0.04: avail = 34.62/34.66 *)
  check_float ~tol:1e-4 "availability" (34.6209 /. 34.6609)
    (Environment.availability env);
  check_float ~tol:1e-2 "mean operative" 9.98845
    (Environment.mean_operative_servers env)

let test_stationary_mode_probabilities_sum_to_one () =
  let env = paper_env ~servers:6 in
  let total = ref 0.0 in
  for i = 0 to Environment.num_modes env - 1 do
    let p = Environment.stationary_mode_probability env i in
    if p < 0.0 then Alcotest.fail "negative mode probability";
    total := !total +. p
  done;
  check_float ~tol:1e-12 "sum to 1" 1.0 !total

let test_stationary_matches_environment_balance () =
  (* the multinomial stationary vector must satisfy πQ_env = 0 where
     Q_env = A - D^A *)
  let env = paper_env ~servers:4 in
  let s = Environment.num_modes env in
  let a = Environment.transition_matrix env in
  let d = M.diagonal (M.row_sums a) in
  let gen = M.sub a d in
  let pi =
    Array.init s (fun i -> Environment.stationary_mode_probability env i)
  in
  let r = M.vec_mul pi gen in
  if V.norm_inf r > 1e-10 then
    Alcotest.failf "stationary residual %g" (V.norm_inf r)

(* ---- Stability (eq. 11) ---- *)

let test_stability_threshold () =
  let env = paper_env ~servers:10 in
  let cap = Environment.mean_operative_servers env in
  let v = Stability.check ~env ~lambda:(cap *. 0.99) ~mu:1.0 in
  Alcotest.(check bool) "stable below capacity" true v.Stability.stable;
  let v = Stability.check ~env ~lambda:(cap *. 1.01) ~mu:1.0 in
  Alcotest.(check bool) "unstable above capacity" false v.Stability.stable;
  check_float ~tol:1e-9 "max rate" cap (Stability.max_arrival_rate ~env ~mu:1.0)

(* ---- QBD blocks ---- *)

let test_qbd_blocks () =
  let env = paper_env ~servers:3 in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.5 in
  let s = Qbd.s q in
  (* B = λI *)
  Alcotest.(check bool) "B = λI" true
    (M.approx_equal (Qbd.b q) (M.scalar s 2.0));
  (* C_0 = 0 *)
  Alcotest.(check bool) "C_0 = 0" true (M.approx_equal (Qbd.c q 0) (M.create s s));
  (* C_j diagonal with min(ops, j)·µ *)
  let c2 = Qbd.c q 2 in
  for i = 0 to s - 1 do
    let expected =
      float_of_int (min (Environment.operative_servers env i) 2) *. 1.5
    in
    check_float "C_2 diag" expected (M.get c2 i i)
  done;
  (* c_diag agrees with c *)
  let cd = Qbd.c_diag q 5 in
  let cm = Qbd.c q 5 in
  for i = 0 to s - 1 do
    check_float "c_diag" (M.get cm i i) cd.(i)
  done;
  (* Q(1) must be singular: it is the environment generator *)
  let d = Urs_linalg.Clu.det (Qbd.char_poly_at q Cx.one) in
  if Cx.modulus d > 1e-8 then Alcotest.failf "det Q(1) = %g" (Cx.modulus d)

let test_transition_block_nonsingular () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  for j = 0 to 5 do
    match Urs_linalg.Lu.factor (Qbd.transition_block q j) with
    | Ok _ -> ()
    | Error `Singular -> Alcotest.failf "T_%d singular" j
  done

(* ---- Spectral expansion ---- *)

let test_spectral_matches_mmc_when_reliable () =
  (* nearly-always-operative servers: must reproduce Erlang C *)
  let op = exp_dist 1e-9 and inop = exp_dist 1e3 in
  let env = Environment.create ~servers:4 ~operative:op ~inoperative:inop in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let sol = solve_exn q in
  let l_exact = Mmc.mean_queue_length ~servers:4 ~lambda:3.0 ~mu:1.0 in
  check_float ~tol:1e-5 "L matches M/M/4" l_exact (Spectral.mean_queue_length sol)

let test_spectral_mm1_with_breakdowns_closed_form () =
  (* N=1, exponential op/inop: the M/M/1 queue in a random environment.
     Verify against the matrix-geometric solution and basic identities. *)
  let env =
    Environment.create ~servers:1 ~operative:(exp_dist 0.1)
      ~inoperative:(exp_dist 1.0)
  in
  let q = Qbd.create ~env ~lambda:0.5 ~mu:1.0 in
  let sol = solve_exn q in
  (match Matrix_geometric.solve q with
  | Ok mg ->
      check_float ~tol:1e-8 "spectral = matrix-geometric"
        (Matrix_geometric.mean_queue_length mg)
        (Spectral.mean_queue_length sol)
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e);
  check_float ~tol:1e-10 "busy = λ/µ" 0.5 (Spectral.mean_busy_servers sol)

let test_spectral_waiting_metrics () =
  (* near-reliable: waiting time must match Erlang-C's Wq *)
  let op = exp_dist 1e-9 and inop = exp_dist 1e3 in
  let env = Environment.create ~servers:4 ~operative:op ~inoperative:inop in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let sol = solve_exn q in
  check_float ~tol:1e-5 "Wq matches Erlang C"
    (Mmc.mean_waiting_time ~servers:4 ~lambda:3.0 ~mu:1.0)
    (Spectral.mean_waiting_time sol);
  check_float ~tol:1e-10 "Lq = L - λ/µ"
    (Spectral.mean_queue_length sol -. 3.0)
    (Spectral.mean_waiting_jobs sol)

let test_spectral_eigenvalue_count_and_range () =
  let env = paper_env ~servers:6 in
  let q = Qbd.create ~env ~lambda:4.0 ~mu:1.0 in
  let sol = solve_exn q in
  let zs = Spectral.eigenvalues sol in
  Alcotest.(check int) "s eigenvalues" (Qbd.s q) (Array.length zs);
  Array.iter
    (fun z ->
      if Cx.modulus z >= 1.0 then Alcotest.fail "eigenvalue outside unit disk")
    zs;
  let zd = Spectral.dominant_eigenvalue sol in
  Alcotest.(check bool) "dominant real positive" true (zd > 0.0 && zd < 1.0)

let test_spectral_probabilities_normalize () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let sol = solve_exn q in
  (* level probabilities sum to 1 (tail via closed form) *)
  let head = ref 0.0 in
  for j = 0 to 3 do
    head := !head +. Spectral.level_probability sol j
  done;
  check_float ~tol:1e-10 "head + tail = 1" 1.0 (!head +. Spectral.tail_probability sol 4);
  (* tail is decreasing *)
  let t1 = Spectral.tail_probability sol 10 in
  let t2 = Spectral.tail_probability sol 20 in
  Alcotest.(check bool) "tail decreasing" true (t2 < t1);
  (* L = Σ j p_j matches the closed form, summed far into the tail *)
  let l_direct = ref 0.0 in
  for j = 1 to 4000 do
    l_direct := !l_direct +. (float_of_int j *. Spectral.level_probability sol j)
  done;
  check_float ~tol:1e-6 "L closed form vs direct sum" !l_direct
    (Spectral.mean_queue_length sol)

let test_spectral_mode_marginals_match_multinomial () =
  let env = paper_env ~servers:5 in
  let q = Qbd.create ~env ~lambda:4.0 ~mu:1.0 in
  let sol = solve_exn q in
  let mm = Spectral.mode_marginals sol in
  for i = 0 to Qbd.s q - 1 do
    check_float ~tol:1e-9 "marginal"
      (Environment.stationary_mode_probability env i)
      mm.(i)
  done

let test_spectral_busy_servers_identity () =
  (* in steady state the expected number of busy servers is λ/µ *)
  let env = paper_env ~servers:8 in
  let q = Qbd.create ~env ~lambda:6.0 ~mu:1.0 in
  let sol = solve_exn q in
  check_float ~tol:1e-8 "busy = λ/µ" 6.0 (Spectral.mean_busy_servers sol)

let test_spectral_balance_residual () =
  let env = paper_env ~servers:5 in
  let q = Qbd.create ~env ~lambda:4.0 ~mu:1.0 in
  let sol = solve_exn q in
  if Spectral.residual sol > 1e-10 then
    Alcotest.failf "balance residual %g" (Spectral.residual sol)

let test_spectral_unstable_detected () =
  let env = paper_env ~servers:2 in
  let q = Qbd.create ~env ~lambda:5.0 ~mu:1.0 in
  match Spectral.solve q with
  | Error (Spectral.Unstable _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Spectral.pp_error e
  | Ok _ -> Alcotest.fail "expected instability"

let test_spectral_little_law () =
  let env = paper_env ~servers:5 in
  let q = Qbd.create ~env ~lambda:4.0 ~mu:1.0 in
  let sol = solve_exn q in
  check_float ~tol:1e-12 "W = L/λ"
    (Spectral.mean_queue_length sol /. 4.0)
    (Spectral.mean_response_time sol)

let test_spectral_hyperexponential_repairs () =
  (* m = 2 phases on the inoperative side as well *)
  let inop = H.of_pairs [ (0.9303, 25.0043); (0.0697, 1.6346) ] in
  let env =
    Environment.create ~servers:3 ~operative:paper_operative ~inoperative:inop
  in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  (match Matrix_geometric.solve q with
  | Ok mg ->
      check_float ~tol:1e-7 "n=2,m=2 spectral = mg"
        (Matrix_geometric.mean_queue_length mg)
        (Spectral.mean_queue_length sol)
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e);
  check_float ~tol:1e-8 "busy" 2.0 (Spectral.mean_busy_servers sol)

let test_spectral_three_phase_operative () =
  (* n = 3 phases exercises the general enumeration *)
  let op = H.of_pairs [ (0.5, 0.5); (0.3, 0.05); (0.2, 0.01) ] in
  let env =
    Environment.create ~servers:3 ~operative:op ~inoperative:(exp_dist 10.0)
  in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  (match Matrix_geometric.solve q with
  | Ok mg ->
      check_float ~tol:1e-7 "n=3 spectral = mg"
        (Matrix_geometric.mean_queue_length mg)
        (Spectral.mean_queue_length sol)
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e);
  if Spectral.residual sol > 1e-9 then Alcotest.fail "residual too large"

let test_spectral_queue_quantiles () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let sol = solve_exn q in
  List.iter
    (fun p ->
      let j = Spectral.queue_length_quantile sol p in
      (* defining property of the quantile *)
      Alcotest.(check bool) "P(<=j) >= p" true
        (1.0 -. Spectral.tail_probability sol (j + 1) >= p -. 1e-12);
      if j > 0 then
        Alcotest.(check bool) "P(<=j-1) < p" true
          (1.0 -. Spectral.tail_probability sol j < p))
    [ 0.5; 0.9; 0.99 ]

let test_geometric_queue_quantiles () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let geo =
    match Geometric.solve q with
    | Ok g -> g
    | Error e -> Alcotest.failf "geometric solve failed: %a" Geometric.pp_error e
  in
  List.iter
    (fun p ->
      let j = Geometric.queue_length_quantile geo p in
      Alcotest.(check bool) "P(<=j) >= p" true
        (1.0 -. Geometric.tail_probability geo (j + 1) >= p -. 1e-12);
      if j > 0 then
        Alcotest.(check bool) "P(<=j-1) < p" true
          (1.0 -. Geometric.tail_probability geo j < p))
    [ 0.5; 0.9; 0.999 ]

(* ---- phase-type extension (beyond the paper) ---- *)

let test_ph_env_consistent_with_h2_env () =
  (* building the environment via the general PH path must give exactly
     the paper's transition matrix for hyperexponential laws *)
  let op = H.create ~weights:[| 0.4; 0.6 |] ~rates:[| 0.5; 0.125 |] in
  let inop = exp_dist 2.0 in
  let via_h2 = Environment.create ~servers:2 ~operative:op ~inoperative:inop in
  let via_ph =
    Environment.create_ph ~servers:2
      ~operative:(Urs_prob.Phase_type.of_hyperexponential op)
      ~inoperative:(Urs_prob.Phase_type.of_hyperexponential inop)
      ()
  in
  Alcotest.(check bool) "same A" true
    (M.approx_equal
       (Environment.transition_matrix via_h2)
       (Environment.transition_matrix via_ph))

let test_ph_env_erlang_vs_truncated () =
  (* Erlang-2 operative periods: solve exactly via the PH environment
     and check against the brute-force oracle *)
  let op = Urs_prob.Phase_type.of_erlang (Urs_prob.Erlang.create ~k:2 ~rate:0.1) in
  let inop =
    Urs_prob.Phase_type.of_hyperexponential (exp_dist 2.0)
  in
  let env = Environment.create_ph ~servers:3 ~operative:op ~inoperative:inop () in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  (match Truncated.solve ~levels:250 q with
  | Error e -> Alcotest.failf "truncated failed: %a" Truncated.pp_error e
  | Ok t ->
      check_float ~tol:1e-7 "erlang-op L" (Truncated.mean_queue_length t)
        (Spectral.mean_queue_length sol));
  check_float ~tol:1e-8 "busy = λ/µ" 2.0 (Spectral.mean_busy_servers sol)

let test_ph_env_coxian_marginals () =
  (* a genuine Coxian (within-period phase transitions): the mode
     marginals must still follow the occupation-time multinomial *)
  let cox =
    Urs_prob.Phase_type.create ~alpha:[| 1.0; 0.0 |]
      ~t_matrix:(M.of_arrays [| [| -0.2; 0.15 |]; [| 0.0; -0.02 |] |])
  in
  let inop = Urs_prob.Phase_type.of_hyperexponential (exp_dist 2.0) in
  let env = Environment.create_ph ~servers:3 ~operative:cox ~inoperative:inop () in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  let mm = Spectral.mode_marginals sol in
  for i = 0 to Qbd.s q - 1 do
    check_float ~tol:1e-9 "marginal"
      (Environment.stationary_mode_probability env i)
      mm.(i)
  done

let test_ph_env_rejects_defect () =
  let defective =
    Urs_prob.Phase_type.create ~alpha:[| 0.5 |]
      ~t_matrix:(M.of_arrays [| [| -1.0 |] |])
  in
  let inop = Urs_prob.Phase_type.of_hyperexponential (exp_dist 2.0) in
  try
    ignore
      (Environment.create_ph ~servers:2 ~operative:defective ~inoperative:inop
         ());
    Alcotest.fail "defective initial distribution must be rejected"
  with Invalid_argument _ -> ()

(* ---- transient analysis (beyond the paper) ---- *)

let transient_exn q =
  match Transient.create ~levels:150 q with
  | Ok t -> t
  | Error e -> Alcotest.failf "transient failed: %a" Transient.pp_error e

let test_transient_relaxes_to_steady_state () =
  let env = paper_env ~servers:3 in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  let t = transient_exn q in
  let init = Transient.empty_all_operative t in
  check_float ~tol:1e-12 "L(0) = 0" 0.0
    (Transient.mean_jobs_at t ~initial:init ~time:0.0);
  check_float ~tol:1e-4 "L(∞) = steady state"
    (Spectral.mean_queue_length sol)
    (Transient.mean_jobs_at t ~initial:init ~time:400.0);
  (* from an empty start the mean queue grows towards the limit *)
  let l1 = Transient.mean_jobs_at t ~initial:init ~time:1.0 in
  let l5 = Transient.mean_jobs_at t ~initial:init ~time:5.0 in
  let l50 = Transient.mean_jobs_at t ~initial:init ~time:50.0 in
  Alcotest.(check bool) "monotone build-up" true (l1 < l5 && l5 < l50)

let test_transient_distribution_normalized () =
  let env = paper_env ~servers:2 in
  let q = Qbd.create ~env ~lambda:1.2 ~mu:1.0 in
  let t = transient_exn q in
  let init = Transient.empty_all_operative t in
  List.iter
    (fun time ->
      let pi = Transient.distribution_at t ~initial:init ~time in
      let total = Array.fold_left ( +. ) 0.0 pi in
      check_float ~tol:1e-9 "sums to 1" 1.0 total;
      Array.iter
        (fun p -> if p < -1e-12 then Alcotest.fail "negative probability")
        pi)
    [ 0.0; 0.5; 3.0; 25.0 ]

let test_transient_operative_relaxation () =
  (* servers start all operative and relax to N·availability *)
  let env = paper_env ~servers:3 in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let t = transient_exn q in
  let init = Transient.empty_all_operative t in
  check_float ~tol:1e-9 "all operative at 0" 3.0
    (Transient.mean_operative_at t ~initial:init ~time:0.0);
  check_float ~tol:1e-3 "relaxes to N·availability"
    (Environment.mean_operative_servers env)
    (Transient.mean_operative_at t ~initial:init ~time:300.0)

let test_transient_unstable_queue_grows () =
  (* transient analysis applies to unstable queues too: from empty the
     queue keeps growing *)
  let env = paper_env ~servers:2 in
  let q = Qbd.create ~env ~lambda:5.0 ~mu:1.0 in
  let t = transient_exn q in
  let init = Transient.empty_all_operative t in
  let l10 = Transient.mean_jobs_at t ~initial:init ~time:10.0 in
  let l30 = Transient.mean_jobs_at t ~initial:init ~time:30.0 in
  Alcotest.(check bool) "unbounded growth" true (l30 > l10 +. 20.0)

(* ---- limited repair crews (beyond the paper) ---- *)

let crews_env ~crews =
  Environment.create_ph ~repair_crews:crews ~servers:6
    ~operative:
      (Urs_prob.Phase_type.of_hyperexponential (exp_dist 0.1))
    ~inoperative:
      (Urs_prob.Phase_type.of_hyperexponential (exp_dist 0.5))
    ()

let test_crews_match_oracle () =
  List.iter
    (fun crews ->
      let env = crews_env ~crews in
      let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
      let sol = solve_exn q in
      match Truncated.solve ~levels:300 q with
      | Error e -> Alcotest.failf "oracle failed: %a" Truncated.pp_error e
      | Ok t ->
          check_float ~tol:1e-7
            (Printf.sprintf "crews=%d" crews)
            (Truncated.mean_queue_length t)
            (Spectral.mean_queue_length sol))
    [ 1; 2; 4 ]

let test_crews_degrade_capacity () =
  (* fewer crews -> lower effective capacity -> larger queues *)
  let capacity crews = Environment.mean_operative_servers (crews_env ~crews) in
  Alcotest.(check bool) "capacity decreasing" true
    (capacity 1 < capacity 2 && capacity 2 < capacity 6);
  (* with full crews the capacity matches the independent-server formula *)
  check_float ~tol:1e-9 "unlimited = closed form" 5.0 (capacity 6);
  let l crews =
    let q = Qbd.create ~env:(crews_env ~crews) ~lambda:2.0 ~mu:1.0 in
    Spectral.mean_queue_length (solve_exn q)
  in
  Alcotest.(check bool) "L increasing as crews shrink" true
    (l 1 > l 2 && l 2 > l 6)

let test_crews_stationary_solve_consistent () =
  (* with unlimited crews the generator-solved stationary distribution
     must coincide with the multinomial closed form *)
  let env = crews_env ~crews:6 in
  let limited = crews_env ~crews:5 in
  (* limited: probabilities still sum to 1 and are nonnegative *)
  let total = ref 0.0 in
  for i = 0 to Environment.num_modes limited - 1 do
    let p = Environment.stationary_mode_probability limited i in
    if p < 0.0 then Alcotest.fail "negative stationary probability";
    total := !total +. p
  done;
  check_float ~tol:1e-9 "limited sums to 1" 1.0 !total;
  ignore env

(* ---- geometric approximation ---- *)

let geo_exn q =
  match Geometric.solve q with
  | Ok g -> g
  | Error e -> Alcotest.failf "geometric solve failed: %a" Geometric.pp_error e

let test_geometric_dominant_matches_spectral () =
  let env = paper_env ~servers:6 in
  let q = Qbd.create ~env ~lambda:5.0 ~mu:1.0 in
  let sol = solve_exn q in
  let geo = geo_exn q in
  check_float ~tol:1e-8 "z_s agreement"
    (Spectral.dominant_eigenvalue sol)
    (Geometric.dominant_eigenvalue geo)

let test_geometric_accuracy_improves_with_load () =
  (* the paper's Figure 8 claim: relative error shrinks as load → 1 *)
  let env = paper_env ~servers:10 in
  let rel_err lambda =
    let q = Qbd.create ~env ~lambda ~mu:1.0 in
    let exact = Spectral.mean_queue_length (solve_exn q) in
    let approx = Geometric.mean_queue_length (geo_exn q) in
    abs_float (approx -. exact) /. exact
  in
  let cap = Environment.mean_operative_servers env in
  let e_low = rel_err (0.90 *. cap) in
  let e_high = rel_err (0.99 *. cap) in
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks: %.4f -> %.4f" e_low e_high)
    true (e_high < e_low)

let test_geometric_mode_weights () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.5 ~mu:1.0 in
  let geo = geo_exn q in
  let w = Geometric.mode_weights geo in
  check_float ~tol:1e-10 "weights sum to 1" 1.0 (V.sum w);
  (* geometric level probabilities normalize *)
  let total = ref 0.0 in
  for j = 0 to 2000 do
    total := !total +. Geometric.level_probability geo j
  done;
  check_float ~tol:1e-6 "levels normalize" 1.0 !total;
  check_float ~tol:1e-12 "L = z/(1-z)"
    (Geometric.dominant_eigenvalue geo /. (1.0 -. Geometric.dominant_eigenvalue geo))
    (Geometric.mean_queue_length geo)

let test_geometric_large_n_robust () =
  (* the exact method hits ill-conditioning at large N (paper: N ≳ 24);
     the approximation must still work *)
  let env = paper_env ~servers:30 in
  let cap = Environment.mean_operative_servers env in
  let q = Qbd.create ~env ~lambda:(0.97 *. cap) ~mu:1.0 in
  let geo = geo_exn q in
  let z = Geometric.dominant_eigenvalue geo in
  Alcotest.(check bool) "z in (0,1)" true (z > 0.0 && z < 1.0)

(* ---- matrix-geometric ---- *)

let test_mg_r_satisfies_equation () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  match Matrix_geometric.solve q with
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e
  | Ok mg ->
      let r = Matrix_geometric.r_matrix mg in
      let q0 = Qbd.q0 q and q1 = Qbd.q1 q and q2 = Qbd.q2 q in
      let res =
        M.add q0 (M.add (M.mul r q1) (M.mul (M.mul r r) q2))
      in
      if M.max_abs res > 1e-10 then
        Alcotest.failf "R equation residual %g" (M.max_abs res)

let test_mg_spectral_radius_equals_zs () =
  let env = paper_env ~servers:5 in
  let q = Qbd.create ~env ~lambda:4.0 ~mu:1.0 in
  let sol = solve_exn q in
  match Matrix_geometric.solve q with
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e
  | Ok mg ->
      check_float ~tol:1e-5 "sp(R) = z_s"
        (Spectral.dominant_eigenvalue sol)
        (Matrix_geometric.spectral_radius_estimate mg)

let test_mg_agreement_sweep () =
  (* spectral and matrix-geometric agree across a parameter sweep *)
  List.iter
    (fun (servers, lambda) ->
      let env = paper_env ~servers in
      let q = Qbd.create ~env ~lambda ~mu:1.0 in
      let sol = solve_exn q in
      match Matrix_geometric.solve q with
      | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e
      | Ok mg ->
          let l1 = Spectral.mean_queue_length sol in
          let l2 = Matrix_geometric.mean_queue_length mg in
          if abs_float (l1 -. l2) /. l1 > 1e-7 then
            Alcotest.failf "N=%d λ=%g: %.10f vs %.10f" servers lambda l1 l2)
    [ (2, 1.0); (3, 2.5); (5, 3.0); (7, 5.0) ]

let test_mg_mode_marginals () =
  let env = paper_env ~servers:4 in
  let q = Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  match Matrix_geometric.solve q with
  | Error e -> Alcotest.failf "mg failed: %a" Matrix_geometric.pp_error e
  | Ok mg ->
      let mm = Matrix_geometric.mode_marginals mg in
      for i = 0 to Qbd.s q - 1 do
        check_float ~tol:1e-8 "marginal"
          (Environment.stationary_mode_probability env i)
          mm.(i)
      done

(* ---- truncated brute-force oracle ---- *)

let test_truncated_matches_spectral () =
  let env = paper_env ~servers:3 in
  let q = Qbd.create ~env ~lambda:2.0 ~mu:1.0 in
  let sol = solve_exn q in
  match Truncated.solve ~levels:300 q with
  | Error e -> Alcotest.failf "truncated failed: %a" Truncated.pp_error e
  | Ok t ->
      Alcotest.(check bool) "tail mass negligible" true
        (Truncated.truncation_mass t < 1e-10);
      check_float ~tol:1e-7 "L agrees" (Spectral.mean_queue_length sol)
        (Truncated.mean_queue_length t);
      (* per-state probabilities agree too *)
      for j = 0 to 6 do
        for i = 0 to Qbd.s q - 1 do
          check_float ~tol:1e-9 "p(i,j)"
            (Spectral.probability sol ~mode:i ~jobs:j)
            (Truncated.probability t ~mode:i ~jobs:j)
        done
      done

let test_truncated_m2_repairs () =
  (* hyperexponential repairs as well: m = 2 *)
  let inop = H.of_pairs [ (0.9303, 25.0043); (0.0697, 1.6346) ] in
  let env =
    Environment.create ~servers:2 ~operative:paper_operative ~inoperative:inop
  in
  let q = Qbd.create ~env ~lambda:1.2 ~mu:1.0 in
  let sol = solve_exn q in
  match Truncated.solve ~levels:250 q with
  | Error e -> Alcotest.failf "truncated failed: %a" Truncated.pp_error e
  | Ok t ->
      check_float ~tol:1e-7 "L agrees" (Spectral.mean_queue_length sol)
        (Truncated.mean_queue_length t)

let test_truncated_refuses_large () =
  let env = paper_env ~servers:10 in
  let q = Qbd.create ~env ~lambda:8.0 ~mu:1.0 in
  match Truncated.solve ~levels:500 q with
  | Error (Truncated.Too_large _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Truncated.pp_error e
  | Ok _ -> Alcotest.fail "expected size refusal"

(* ---- Mmc baseline ---- *)

let test_erlang_c_known_values () =
  (* M/M/1: C = ρ *)
  check_float ~tol:1e-12 "M/M/1" 0.6 (Mmc.erlang_c ~servers:1 ~offered_load:0.6);
  (* M/M/2 with a=1: C(2,1) = 1/3 *)
  check_float ~tol:1e-12 "M/M/2" (1.0 /. 3.0) (Mmc.erlang_c ~servers:2 ~offered_load:1.0)

let test_mmc_l_mm1 () =
  (* M/M/1: L = ρ/(1-ρ) *)
  check_float ~tol:1e-12 "L M/M/1" (0.75 /. 0.25)
    (Mmc.mean_queue_length ~servers:1 ~lambda:0.75 ~mu:1.0)

let test_mmc_min_servers () =
  let c = Mmc.min_servers_for_response_time ~lambda:8.0 ~mu:1.0 ~target:1.5 in
  (* must satisfy the target and be minimal *)
  Alcotest.(check bool) "meets target" true
    (Mmc.mean_response_time ~servers:c ~lambda:8.0 ~mu:1.0 <= 1.5);
  Alcotest.(check bool) "minimal" true
    (c = 9
    || Mmc.mean_response_time ~servers:(c - 1) ~lambda:8.0 ~mu:1.0 > 1.5)

(* ---- qcheck properties ---- *)

let gen_system =
  QCheck2.Gen.(
    let* servers = int_range 1 5 in
    let* util = float_range 0.3 0.9 in
    let* w1 = float_range 0.2 0.8 in
    let* r1 = float_range 0.05 0.5 in
    let* ratio = float_range 2.0 30.0 in
    let* inop_rate = float_range 5.0 50.0 in
    let op = H.of_pairs [ (w1, r1); (1.0 -. w1, r1 /. ratio) ] in
    let inop = exp_dist inop_rate in
    let env = Environment.create ~servers ~operative:op ~inoperative:inop in
    let lambda = util *. Environment.mean_operative_servers env in
    return (env, lambda))

let prop_spectral_consistency =
  QCheck2.Test.make ~name:"spectral solution self-consistent" ~count:25
    gen_system (fun (env, lambda) ->
      if lambda <= 0.0 then true
      else begin
        let q = Qbd.create ~env ~lambda ~mu:1.0 in
        match Spectral.solve q with
        | Error _ -> false
        | Ok sol ->
            let busy_ok =
              abs_float (Spectral.mean_busy_servers sol -. lambda) < 1e-6
            in
            let resid_ok = Spectral.residual sol < 1e-8 in
            let l = Spectral.mean_queue_length sol in
            busy_ok && resid_ok && l >= lambda /. 1.0 -. 1e-9
      end)

let prop_spectral_equals_mg =
  QCheck2.Test.make ~name:"spectral = matrix-geometric" ~count:15 gen_system
    (fun (env, lambda) ->
      if lambda <= 0.0 then true
      else begin
        let q = Qbd.create ~env ~lambda ~mu:1.0 in
        match (Spectral.solve q, Matrix_geometric.solve q) with
        | Ok a, Ok b ->
            let la = Spectral.mean_queue_length a in
            let lb = Matrix_geometric.mean_queue_length b in
            abs_float (la -. lb) /. Float.max 1.0 la < 1e-6
        | _ -> false
      end)

let prop_geometric_upper_bound_heavyish =
  QCheck2.Test.make ~name:"dominant eigenvalue in (0,1)" ~count:25 gen_system
    (fun (env, lambda) ->
      if lambda <= 0.0 then true
      else begin
        let q = Qbd.create ~env ~lambda ~mu:1.0 in
        match Geometric.solve q with
        | Error _ -> false
        | Ok geo ->
            let z = Geometric.dominant_eigenvalue geo in
            z > 0.0 && z < 1.0
      end)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "urs_mmq"
    [
      ( "environment",
        [
          Alcotest.test_case "mode count formula (eq 12)" `Quick
            test_mode_count_formula;
          Alcotest.test_case "enumeration matches count" `Quick
            test_mode_enumeration_matches_count;
          Alcotest.test_case "ordering matches paper §3.1" `Quick
            test_mode_ordering_matches_paper;
          Alcotest.test_case "index roundtrip" `Quick test_mode_index_roundtrip;
          Alcotest.test_case "matrix A matches paper §3.1" `Quick
            test_transition_matrix_matches_paper_example;
          Alcotest.test_case "availability" `Quick test_availability;
          Alcotest.test_case "stationary probabilities sum to 1" `Quick
            test_stationary_mode_probabilities_sum_to_one;
          Alcotest.test_case "stationary satisfies balance" `Quick
            test_stationary_matches_environment_balance;
        ] );
      ( "stability",
        [ Alcotest.test_case "threshold (eq 11)" `Quick test_stability_threshold ] );
      ( "qbd",
        [
          Alcotest.test_case "block structure" `Quick test_qbd_blocks;
          Alcotest.test_case "transition blocks nonsingular" `Quick
            test_transition_block_nonsingular;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "reliable limit = M/M/c" `Quick
            test_spectral_matches_mmc_when_reliable;
          Alcotest.test_case "N=1 cross-check" `Quick
            test_spectral_mm1_with_breakdowns_closed_form;
          Alcotest.test_case "waiting-time metrics" `Quick
            test_spectral_waiting_metrics;
          Alcotest.test_case "eigenvalue count and range" `Quick
            test_spectral_eigenvalue_count_and_range;
          Alcotest.test_case "probabilities normalize" `Quick
            test_spectral_probabilities_normalize;
          Alcotest.test_case "mode marginals = multinomial" `Quick
            test_spectral_mode_marginals_match_multinomial;
          Alcotest.test_case "busy servers = λ/µ" `Quick
            test_spectral_busy_servers_identity;
          Alcotest.test_case "balance residual" `Quick test_spectral_balance_residual;
          Alcotest.test_case "instability detected" `Quick
            test_spectral_unstable_detected;
          Alcotest.test_case "little's law" `Quick test_spectral_little_law;
          Alcotest.test_case "hyperexponential repairs (m=2)" `Quick
            test_spectral_hyperexponential_repairs;
          Alcotest.test_case "three-phase operative (n=3)" `Quick
            test_spectral_three_phase_operative;
        ] );
      ( "phase-type extension",
        [
          Alcotest.test_case "PH path reproduces the paper's A" `Quick
            test_ph_env_consistent_with_h2_env;
          Alcotest.test_case "erlang operative vs oracle" `Quick
            test_ph_env_erlang_vs_truncated;
          Alcotest.test_case "coxian mode marginals" `Quick
            test_ph_env_coxian_marginals;
          Alcotest.test_case "defective alpha rejected" `Quick
            test_ph_env_rejects_defect;
        ] );
      ( "transient",
        [
          Alcotest.test_case "relaxes to steady state" `Quick
            test_transient_relaxes_to_steady_state;
          Alcotest.test_case "distribution normalized" `Quick
            test_transient_distribution_normalized;
          Alcotest.test_case "operative relaxation" `Quick
            test_transient_operative_relaxation;
          Alcotest.test_case "unstable queue grows" `Quick
            test_transient_unstable_queue_grows;
        ] );
      ( "repair crews",
        [
          Alcotest.test_case "matches oracle" `Quick test_crews_match_oracle;
          Alcotest.test_case "capacity degrades" `Quick
            test_crews_degrade_capacity;
          Alcotest.test_case "stationary distribution consistent" `Quick
            test_crews_stationary_solve_consistent;
        ] );
      ( "geometric",
        [
          Alcotest.test_case "dominant eigenvalue matches spectral" `Quick
            test_geometric_dominant_matches_spectral;
          Alcotest.test_case "accuracy improves with load (fig 8)" `Quick
            test_geometric_accuracy_improves_with_load;
          Alcotest.test_case "mode weights and normalization" `Quick
            test_geometric_mode_weights;
          Alcotest.test_case "robust at large N" `Quick test_geometric_large_n_robust;
          Alcotest.test_case "spectral queue quantiles" `Quick
            test_spectral_queue_quantiles;
          Alcotest.test_case "geometric queue quantiles" `Quick
            test_geometric_queue_quantiles;
        ] );
      ( "matrix_geometric",
        [
          Alcotest.test_case "R satisfies its equation" `Quick
            test_mg_r_satisfies_equation;
          Alcotest.test_case "sp(R) = z_s" `Quick test_mg_spectral_radius_equals_zs;
          Alcotest.test_case "agreement sweep vs spectral" `Quick
            test_mg_agreement_sweep;
          Alcotest.test_case "mode marginals" `Quick test_mg_mode_marginals;
        ] );
      ( "truncated oracle",
        [
          Alcotest.test_case "matches spectral state-by-state" `Quick
            test_truncated_matches_spectral;
          Alcotest.test_case "hyperexponential repairs" `Quick
            test_truncated_m2_repairs;
          Alcotest.test_case "refuses oversized chains" `Quick
            test_truncated_refuses_large;
        ] );
      ( "mmc",
        [
          Alcotest.test_case "erlang C known values" `Quick
            test_erlang_c_known_values;
          Alcotest.test_case "M/M/1 queue length" `Quick test_mmc_l_mm1;
          Alcotest.test_case "min servers for target" `Quick test_mmc_min_servers;
        ] );
      ( "properties",
        qc
          [
            prop_spectral_consistency;
            prop_spectral_equals_mg;
            prop_geometric_upper_bound_heavyish;
          ] );
    ]
