(* Tests for the synthetic breakdown-log substrate and the Section-2
   analysis pipeline. *)

open Urs_dataset

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let small_config =
  {
    Generate.default with
    Generate.rows = 20_000;
    servers = 50;
    seed = 7;
  }

(* ---- Event ---- *)

let test_event_derivation () =
  let e =
    {
      Event.server_id = 3;
      event_time = 100.0;
      outage_duration = 2.0;
      time_between_events = 12.0;
    }
  in
  check_float "operative period" 10.0 (Event.operative_period e);
  Alcotest.(check bool) "not anomalous" false (Event.is_anomalous e);
  let bad = { e with Event.time_between_events = 1.0 } in
  Alcotest.(check bool) "anomalous" true (Event.is_anomalous bad)

(* ---- Generate ---- *)

let test_generate_row_count () =
  let events = Generate.generate small_config in
  Alcotest.(check int) "rows" 20_000 (Array.length events)

let test_generate_deterministic () =
  let a = Generate.generate small_config in
  let b = Generate.generate small_config in
  Alcotest.(check bool) "same seed, same log" true (a = b);
  let c = Generate.generate { small_config with Generate.seed = 8 } in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_generate_anomaly_fraction () =
  let events = Generate.generate small_config in
  let cleaned = Clean.clean events in
  check_float ~tol:0.01 "anomaly fraction" 0.035 (Clean.anomaly_fraction cleaned)

let test_generate_event_times_increase_per_server () =
  let events = Generate.generate small_config in
  let last = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      (match Hashtbl.find_opt last e.Event.server_id with
      | Some t ->
          if e.Event.event_time <= t then
            Alcotest.fail "per-server event times must increase"
      | None -> ());
      Hashtbl.replace last e.Event.server_id e.Event.event_time)
    events

(* ---- Clean ---- *)

let test_clean_removes_anomalies () =
  let events = Generate.generate small_config in
  let cleaned = Clean.clean events in
  Alcotest.(check int) "total" 20_000 cleaned.Clean.total;
  Alcotest.(check int) "ops = inops"
    (Array.length cleaned.Clean.operative_periods)
    (Array.length cleaned.Clean.inoperative_periods);
  Alcotest.(check int) "ops + anomalies = total" 20_000
    (Array.length cleaned.Clean.operative_periods + cleaned.Clean.anomalies);
  Array.iter
    (fun p -> if p < 0.0 then Alcotest.fail "negative operative period")
    cleaned.Clean.operative_periods

let test_clean_recovers_means () =
  let events = Generate.generate { small_config with Generate.rows = 60_000 } in
  let cleaned = Clean.clean events in
  let op_mean = Urs_stats.Empirical.mean cleaned.Clean.operative_periods in
  let inop_mean = Urs_stats.Empirical.mean cleaned.Clean.inoperative_periods in
  (* ground truth: 34.62 and 0.0797 *)
  check_float ~tol:1.0 "operative mean" 34.62 op_mean;
  check_float ~tol:0.01 "inoperative mean" 0.0797 inop_mean

(* ---- Csv ---- *)

let test_csv_roundtrip_string () =
  let events = Generate.generate { small_config with Generate.rows = 500 } in
  let s = Csv.to_string events in
  let back = Csv.of_string s in
  Alcotest.(check bool) "roundtrip" true (events = back)

let test_csv_roundtrip_file () =
  let events = Generate.generate { small_config with Generate.rows = 200 } in
  let path = Filename.temp_file "urs_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write path events;
      let back = Csv.read path in
      Alcotest.(check bool) "file roundtrip" true (events = back))

let test_csv_malformed () =
  (try
     ignore (Csv.of_string "server_id,event_time,outage_duration,time_between_events\n1,2,3\n");
     Alcotest.fail "expected failure"
   with Failure msg ->
     Alcotest.(check bool) "mentions line" true
       (String.length msg > 0))

let test_csv_tolerates_missing_header () =
  let back = Csv.of_string "1,2.0,0.5,3.0\n" in
  Alcotest.(check int) "one row" 1 (Array.length back);
  check_float "tbe" 3.0 back.(0).Event.time_between_events

(* ---- Pipeline (the Section-2 reproduction) ---- *)

let full_report =
  lazy
    (let events = Generate.generate Generate.default in
     match Pipeline.analyze events with
     | Ok r -> r
     | Error e -> Alcotest.failf "pipeline failed: %a" Urs_prob.Fit.pp_error e)

let test_pipeline_rejects_exponential_operative () =
  let r = Lazy.force full_report in
  let ks = r.Pipeline.operative.Pipeline.exponential_ks in
  Alcotest.(check bool) "exponential rejected" false ks.Urs_prob.Ks.accept;
  (* the paper found D = 0.4742 — a gross misfit, far above critical *)
  Alcotest.(check bool) "rejection is gross" true
    (ks.Urs_prob.Ks.statistic > 2.0 *. ks.Urs_prob.Ks.critical)

let test_pipeline_accepts_h2_operative () =
  let r = Lazy.force full_report in
  let ks = r.Pipeline.operative.Pipeline.h2_ks in
  Alcotest.(check bool) "H2 accepted at 5%" true ks.Urs_prob.Ks.accept

let test_pipeline_accepts_h2_inoperative () =
  let r = Lazy.force full_report in
  let ks = r.Pipeline.inoperative.Pipeline.h2_ks in
  Alcotest.(check bool) "H2 accepted at 5%" true ks.Urs_prob.Ks.accept

let test_pipeline_recovers_operative_parameters () =
  let r = Lazy.force full_report in
  let fit = r.Pipeline.operative.Pipeline.h2_fit in
  let w = Urs_prob.Hyperexponential.weights fit in
  let rates = Urs_prob.Hyperexponential.rates fit in
  (* ground truth (paper's fitted values): 0.7246@0.1663, 0.2754@0.0091 *)
  check_float ~tol:0.03 "w1" 0.7246 w.(0);
  check_float ~tol:0.015 "r1" 0.1663 rates.(0);
  check_float ~tol:0.001 "r2" 0.0091 rates.(1)

let test_pipeline_scv_matches_paper () =
  let r = Lazy.force full_report in
  (* paper: C̃² = 4.6 for operative periods *)
  check_float ~tol:0.3 "operative scv" 4.6 r.Pipeline.operative.Pipeline.scv

let test_pipeline_density_table () =
  let r = Lazy.force full_report in
  let side = r.Pipeline.operative in
  let rows =
    Pipeline.density_table side.Pipeline.histogram
      (Urs_prob.Hyperexponential.pdf side.Pipeline.h2_fit)
      ~upper:250.0
  in
  Alcotest.(check bool) "has rows" true (List.length rows > 10);
  List.iter
    (fun (x, emp, fit) ->
      if x > 250.0 then Alcotest.fail "row beyond upper bound";
      if emp < 0.0 || fit < 0.0 then Alcotest.fail "negative density")
    rows

let test_pipeline_histogram_vs_sample_moments () =
  (* the histogram estimator (paper eq. 1) is upward-biased on a
     long-tailed sample binned into 50 coarse intervals; it must still
     land within ~15% of the unbinned sample mean *)
  let r = Lazy.force full_report in
  let s = r.Pipeline.operative in
  let m1_hist = s.Pipeline.histogram_moments.(0) in
  let m1_samp = s.Pipeline.sample_moments.(0) in
  if abs_float (m1_hist -. m1_samp) /. m1_samp > 0.15 then
    Alcotest.failf "histogram m1 %g far from sample m1 %g" m1_hist m1_samp

(* ---- Bootstrap ---- *)

let test_bootstrap_covers_truth () =
  (* resample fits must bracket the ground-truth parameters *)
  let cfg = { small_config with Generate.rows = 40_000; seed = 12 } in
  let cleaned = Clean.clean (Generate.generate cfg) in
  match
    Bootstrap.h2_fit ~replicates:60 ~seed:4
      cleaned.Clean.operative_periods
  with
  | Error e -> Alcotest.failf "bootstrap failed: %a" Urs_prob.Fit.pp_error e
  | Ok b ->
      Alcotest.(check bool) "most replicates fit" true (b.Bootstrap.failed < 10);
      let covers iv truth =
        truth >= iv.Bootstrap.lo -. 1e-9 && truth <= iv.Bootstrap.hi +. 1e-9
      in
      Alcotest.(check bool) "mean interval covers 34.62" true
        (covers b.Bootstrap.mean 34.62);
      Alcotest.(check bool) "weight interval covers 0.7246" true
        (covers b.Bootstrap.weight1 0.7246);
      Alcotest.(check bool) "interval ordered" true
        (b.Bootstrap.rate1.Bootstrap.lo <= b.Bootstrap.rate1.Bootstrap.hi)

let test_bootstrap_deterministic () =
  let cfg = { small_config with Generate.rows = 5_000; seed = 3 } in
  let cleaned = Clean.clean (Generate.generate cfg) in
  let run () =
    Bootstrap.h2_fit ~replicates:30 ~seed:9 cleaned.Clean.operative_periods
  in
  match (run (), run ()) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "same intervals" true
        (a.Bootstrap.mean = b.Bootstrap.mean
        && a.Bootstrap.rate1 = b.Bootstrap.rate1)
  | _ -> Alcotest.fail "bootstrap failed"

let () =
  Alcotest.run "urs_dataset"
    [
      ("event", [ Alcotest.test_case "derivation" `Quick test_event_derivation ]);
      ( "generate",
        [
          Alcotest.test_case "row count" `Quick test_generate_row_count;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "anomaly fraction" `Quick
            test_generate_anomaly_fraction;
          Alcotest.test_case "per-server times increase" `Quick
            test_generate_event_times_increase_per_server;
        ] );
      ( "clean",
        [
          Alcotest.test_case "removes anomalies" `Quick test_clean_removes_anomalies;
          Alcotest.test_case "recovers means" `Quick test_clean_recovers_means;
        ] );
      ( "csv",
        [
          Alcotest.test_case "string roundtrip" `Quick test_csv_roundtrip_string;
          Alcotest.test_case "file roundtrip" `Quick test_csv_roundtrip_file;
          Alcotest.test_case "malformed input" `Quick test_csv_malformed;
          Alcotest.test_case "missing header tolerated" `Quick
            test_csv_tolerates_missing_header;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "covers ground truth" `Quick
            test_bootstrap_covers_truth;
          Alcotest.test_case "deterministic" `Quick test_bootstrap_deterministic;
        ] );
      ( "pipeline (section 2)",
        [
          Alcotest.test_case "exponential rejected for operative periods" `Quick
            test_pipeline_rejects_exponential_operative;
          Alcotest.test_case "H2 accepted for operative periods" `Quick
            test_pipeline_accepts_h2_operative;
          Alcotest.test_case "H2 accepted for inoperative periods" `Quick
            test_pipeline_accepts_h2_inoperative;
          Alcotest.test_case "recovers the paper's fitted parameters" `Quick
            test_pipeline_recovers_operative_parameters;
          Alcotest.test_case "scv matches paper (4.6)" `Quick
            test_pipeline_scv_matches_paper;
          Alcotest.test_case "figure 3/4 density table" `Quick
            test_pipeline_density_table;
          Alcotest.test_case "moment estimators agree" `Quick
            test_pipeline_histogram_vs_sample_moments;
        ] );
    ]
