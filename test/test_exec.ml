(* The execution layer: domain pool semantics (ordering, exceptions,
   teardown, nesting), the memo cache, domain-safety of the obs layer
   under pool load, and the determinism guarantees the --jobs flag
   relies on (pool width must never change a result). *)

module Pool = Urs_exec.Pool
module Cache = Urs_exec.Cache
module Metrics = Urs_obs.Metrics
module Ledger = Urs_obs.Ledger

(* ---- pool semantics ---- *)

let test_pool_map_matches_list_map () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "ordered results, domains=%d" domains)
            expected (Pool.map pool f xs)))
    [ 1; 2; 4 ]

let test_pool_empty_and_single () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "single input" [ 8 ] (Pool.map pool succ [ 7 ]))

exception Boom of int

let test_pool_exception_propagation () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let ran = Atomic.make 0 in
          let f x =
            Atomic.incr ran;
            if x mod 3 = 1 then raise (Boom x) else x
          in
          (match Pool.map pool f (List.init 10 Fun.id) with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom x ->
              Alcotest.(check int)
                (Printf.sprintf "earliest failing input, domains=%d" domains)
                1 x);
          Alcotest.(check int)
            "all tasks still ran" 10 (Atomic.get ran)))
    [ 1; 4 ]

let test_pool_map_result () =
  Pool.with_pool ~domains:2 (fun pool ->
      let outcomes =
        Pool.map_result pool
          (fun x -> if x = 2 then raise (Boom x) else 10 * x)
          [ 1; 2; 3 ]
      in
      match outcomes with
      | [ Ok 10; Error (Boom 2); Ok 30 ] -> ()
      | _ -> Alcotest.fail "unexpected map_result outcomes")

let test_pool_nested_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let result =
        Pool.map pool
          (fun i -> List.fold_left ( + ) 0 (Pool.map pool (( * ) i) [ 1; 2; 3 ]))
          (List.init 8 Fun.id)
      in
      Alcotest.(check (list int))
        "nested batches complete" (List.init 8 (fun i -> 6 * i)) result)

let test_pool_map_reduce () =
  (* string concatenation is not commutative: a deterministic fold order
     is observable *)
  let xs = List.init 50 Fun.id in
  let expected = String.concat "," (List.map string_of_int xs) in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let got =
            Pool.map_reduce pool ~map:string_of_int
              ~fold:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
              ~init:"" xs
          in
          Alcotest.(check string)
            (Printf.sprintf "fold in input order, domains=%d" domains)
            expected got))
    [ 1; 4 ]

let test_pool_shutdown () =
  let pool = Pool.create ~domains:4 () in
  (* a real load right before teardown: every queued task must complete *)
  let n = 500 in
  let sum = Pool.map_reduce pool ~map:Fun.id ~fold:( + ) ~init:0 (List.init n Fun.id) in
  Alcotest.(check int) "work before shutdown" (n * (n - 1) / 2) sum;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  (match Pool.map pool succ [ 1 ] with
  | _ -> Alcotest.fail "map after shutdown must raise"
  | exception Invalid_argument _ -> ());
  match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains=0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_pool_domains () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "width" 3 (Pool.domains pool));
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "sequential width" 1 (Pool.domains pool))

(* ---- per-task GC accounting ---- *)

(* With profiling armed, every task folds its Gc.quick_stat delta into
   the pool's gc counters; minor words are domain-local, so a 4-domain
   pool must account the same per-task allocation as the sequential
   inline path. With profiling off the counters must never move — the
   zero-overhead default. *)
let test_pool_gc_accounting () =
  let work x =
    ignore
      (Sys.opaque_identity (List.init 20_000 (fun i -> float_of_int (i + x))));
    x
  in
  let xs = List.init 40 Fun.id in
  let minor name =
    Option.value ~default:0.0
      (Metrics.value ~labels:[ ("pool", name) ] "urs_pool_gc_minor_words_total")
  in
  Pool.with_pool ~name:"gcoff" ~domains:2 (fun pool ->
      ignore (Pool.map pool work xs));
  Alcotest.(check (float 0.0)) "profiling off: zero" 0.0 (minor "gcoff");
  Urs_obs.Runtime.set_profiling true;
  Fun.protect
    ~finally:(fun () -> Urs_obs.Runtime.set_profiling false)
    (fun () ->
      Pool.with_pool ~name:"gcseq" ~domains:1 (fun pool ->
          ignore (Pool.map pool work xs));
      Pool.with_pool ~name:"gcpar" ~domains:4 (fun pool ->
          ignore (Pool.map pool work xs));
      let seq = minor "gcseq" and par = minor "gcpar" in
      (* 40 tasks x 20k list elements is at least a few million words *)
      if seq < 1e6 then
        Alcotest.failf "sequential path under-accounts: %g minor words" seq;
      let rel = Float.abs (par -. seq) /. seq in
      if rel > 0.10 then
        Alcotest.failf
          "gc accounting diverges across widths: seq %g par %g (%.1f%%)" seq
          par (100.0 *. rel);
      (* the parallel path also promotes some of it; the counter must
         exist and stay non-negative *)
      match
        Metrics.value
          ~labels:[ ("pool", "gcpar") ]
          "urs_pool_gc_promoted_words_total"
      with
      | Some p when p >= 0.0 -> ()
      | _ -> Alcotest.fail "promoted-words counter missing")

(* ---- obs layer under concurrent load ---- *)

(* Hammer one counter, one gauge and one histogram from several domains;
   totals must come out exact — a lost update means the guards are
   broken, and this test is the one that catches it. *)
let test_metrics_concurrent_exact () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "stress_total" in
  let g = Metrics.gauge ~registry "stress_gauge" in
  let h = Metrics.histogram ~registry ~buckets:[| 0.5 |] "stress_hist" in
  let domains = 4 and per_domain = 25_000 in
  let work () =
    for i = 1 to per_domain do
      Metrics.inc c;
      Metrics.add g 2.0;
      Metrics.observe h (if i mod 2 = 0 then 0.25 else 0.75)
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join spawned;
  let total = float_of_int (domains * per_domain) in
  Alcotest.(check (float 0.0)) "counter exact" total (Metrics.counter_value c);
  Alcotest.(check (float 0.0))
    "gauge adds exact" (2.0 *. total) (Metrics.gauge_value g);
  let entries = Metrics.snapshot ~registry () in
  let count =
    List.find_map
      (fun (e : Metrics.entry) ->
        match e.Metrics.data with
        | Metrics.Histogram_value { count; _ }
          when e.Metrics.name = "stress_hist" ->
            Some count
        | _ -> None)
      entries
  in
  Alcotest.(check (option int))
    "histogram observations exact"
    (Some (domains * per_domain))
    count

let test_ledger_concurrent_ring () =
  Ledger.reset ();
  Ledger.set_memory true;
  Fun.protect ~finally:Ledger.reset @@ fun () ->
  let domains = 4 and per_domain = 100 in
  let work d () =
    for i = 1 to per_domain do
      Ledger.record ~kind:"stress"
        ~params:
          [ ("domain", Urs_obs.Json.Int d); ("i", Urs_obs.Json.Int i) ]
        ~wall_seconds:0.0 ()
    done
  in
  let spawned = List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1))) in
  work 0 ();
  List.iter Domain.join spawned;
  let records = Ledger.recent ~limit:(domains * per_domain) () in
  Alcotest.(check int)
    "every record kept" (domains * per_domain) (List.length records);
  let seqs = List.map (fun r -> r.Ledger.seq) records in
  let uniq = List.sort_uniq compare seqs in
  Alcotest.(check int)
    "sequence numbers unique" (List.length seqs) (List.length uniq)

(* The process-global QR sweep counter is an Atomic: four domains
   solving the same deterministic matrix must account for every sweep
   exactly, no lost updates. *)
let test_qr_sweep_counter_concurrent_exact () =
  let open Urs_linalg in
  let a =
    Matrix.init 10 10 (fun i j -> sin (float_of_int ((i * 10) + j + 1)))
  in
  let sweeps_of_one =
    let before = Qr_eig.total_sweeps () in
    ignore (Eigen.eigenvalues a);
    Qr_eig.total_sweeps () - before
  in
  Alcotest.(check bool) "solve costs sweeps" true (sweeps_of_one > 0);
  let domains = 4 and per_domain = 8 in
  let before = Qr_eig.total_sweeps () in
  let work () =
    for _ = 1 to per_domain do
      ignore (Eigen.eigenvalues a)
    done
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join spawned;
  Alcotest.(check int)
    "total exact under contention"
    (domains * per_domain * sweeps_of_one)
    (Qr_eig.total_sweeps () - before)

(* ---- memo cache ---- *)

let test_cache_hit_miss_counters () =
  let registry = Metrics.create () in
  let c = Cache.create ~registry ~name:"t" () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "miss computes" 42 (Cache.find_or_compute c "k" compute);
  Alcotest.(check int) "hit reuses" 42 (Cache.find_or_compute c "k" compute);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check (option (float 0.0)))
    "one miss"
    (Some 1.0)
    (Metrics.value ~registry ~labels:[ ("cache", "t") ] "urs_cache_misses_total");
  Alcotest.(check (option (float 0.0)))
    "one hit"
    (Some 1.0)
    (Metrics.value ~registry ~labels:[ ("cache", "t") ] "urs_cache_hits_total");
  Alcotest.(check (option int)) "find" (Some 42) (Cache.find c "k");
  Alcotest.(check (option int)) "find miss" None (Cache.find c "absent")

let test_cache_lru_eviction () =
  let registry = Metrics.create () in
  let c = Cache.create ~registry ~capacity:2 ~name:"lru" () in
  ignore (Cache.find_or_compute c "a" (fun () -> 1));
  ignore (Cache.find_or_compute c "b" (fun () -> 2));
  ignore (Cache.find c "a");
  (* refresh a: b is now the LRU entry *)
  ignore (Cache.find_or_compute c "c" (fun () -> 3));
  Alcotest.(check int) "bounded" 2 (Cache.length c);
  Alcotest.(check (option int)) "a survived" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option (float 0.0)))
    "eviction counted"
    (Some 1.0)
    (Metrics.value ~registry
       ~labels:[ ("cache", "lru") ]
       "urs_cache_evictions_total");
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.length c)

let test_cache_exception_not_cached () =
  let c = Cache.create ~name:"exn" () in
  (match Cache.find_or_compute c "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "nothing cached" 0 (Cache.length c);
  Alcotest.(check int) "later compute works" 7
    (Cache.find_or_compute c "k" (fun () -> 7))

let test_cache_concurrent_first_insert_wins () =
  let c = Cache.create ~name:"race" () in
  let domains = 4 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Cache.find_or_compute c "shared" (fun () -> d)))
  in
  let results = List.map Domain.join spawned in
  let winner = Cache.find c "shared" in
  Alcotest.(check bool) "a value was kept" true (winner <> None);
  let w = Option.get winner in
  Alcotest.(check bool)
    "every caller observes one of the computed values" true
    (List.mem w results);
  Alcotest.(check int) "single entry" 1 (Cache.length c)

(* ---- determinism across pool widths ---- *)

let paper_model =
  Urs.Model.create ~servers:3 ~arrival_rate:2.0 ~service_rate:1.0
    ~operative:Urs.Model.paper_operative
    ~inoperative:Urs.Model.paper_inoperative_exp ()

let test_sweep_identical_across_widths () =
  let values = [ 1.0; 1.5; 2.0; 2.4 ] in
  let sequential = Urs.Sweep.over_arrival_rates paper_model ~values in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = Urs.Sweep.over_arrival_rates ~pool paper_model ~values in
      Alcotest.(check int)
        "same point count" (List.length sequential) (List.length parallel);
      List.iter2
        (fun (x1, (p1 : Urs.Solver.performance)) (x2, p2) ->
          Alcotest.(check (float 0.0)) "x" x1 x2;
          Alcotest.(check (float 0.0)) "mean jobs" p1.Urs.Solver.mean_jobs
            p2.Urs.Solver.mean_jobs;
          Alcotest.(check (float 0.0)) "mean response"
            p1.Urs.Solver.mean_response p2.Urs.Solver.mean_response)
        sequential parallel)

let test_replicate_identical_across_widths () =
  let cfg =
    {
      Urs_sim.Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.05;
      inoperative = Urs_prob.Distribution.exponential ~rate:10.0;
      repair_crews = None;
    }
  in
  let run ?pool () =
    Urs_sim.Replicate.run ?pool ~seed:11 ~replications:4 ~duration:1_000.0 cfg
  in
  let sequential = run () in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel = run ~pool () in
      Alcotest.(check (float 0.0))
        "mean jobs bit-identical"
        sequential.Urs_sim.Replicate.mean_jobs.Urs_sim.Replicate.estimate
        parallel.Urs_sim.Replicate.mean_jobs.Urs_sim.Replicate.estimate;
      Alcotest.(check (float 0.0))
        "CI bit-identical"
        sequential.Urs_sim.Replicate.mean_jobs.Urs_sim.Replicate.half_width
        parallel.Urs_sim.Replicate.mean_jobs.Urs_sim.Replicate.half_width)

let test_solve_cache_reuses_result () =
  let cache = Urs.Solve_cache.create () in
  let first = Urs.Solve_cache.evaluate ~cache paper_model in
  let second = Urs.Solve_cache.evaluate ~cache paper_model in
  (match (first, second) with
  | Ok a, Ok b ->
      Alcotest.(check (float 0.0))
        "memoized value" a.Urs.Solver.mean_jobs b.Urs.Solver.mean_jobs
  | _ -> Alcotest.fail "expected Ok");
  Alcotest.(check int) "one entry" 1 (Urs.Solve_cache.length cache);
  (* a different strategy is a different key *)
  ignore
    (Urs.Solve_cache.evaluate ~cache ~strategy:Urs.Solver.Approximate
       paper_model);
  Alcotest.(check int) "strategy in key" 2 (Urs.Solve_cache.length cache);
  (* errors are memoized too *)
  let unstable = Urs.Model.with_arrival_rate paper_model 50.0 in
  (match Urs.Solve_cache.evaluate ~cache unstable with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unstable error");
  Alcotest.(check int) "error cached" 3 (Urs.Solve_cache.length cache)

let test_solve_cache_key_distinguishes_models () =
  let k m = Urs.Solve_cache.key Urs.Solver.Exact m in
  Alcotest.(check bool)
    "same model, same key" true
    (k paper_model = k paper_model);
  let nudged =
    Urs.Model.with_arrival_rate paper_model
      (paper_model.Urs.Model.arrival_rate +. 1e-15)
  in
  Alcotest.(check bool)
    "1 ulp apart, different key" true
    (k paper_model <> k nudged);
  Alcotest.(check bool)
    "servers in key" true
    (k paper_model <> k (Urs.Model.with_servers paper_model 4))

(* ---- cross-domain trace correlation ---- *)

module Span = Urs_obs.Span
module Context = Urs_obs.Context
module Json = Urs_obs.Json

(* logical span shape: name + children, stripped of ids and timings *)
type shape = { sname : string; kids : shape list }

let rec canon s =
  { s with kids = List.sort compare (List.map canon s.kids) }

(* flatten the physical per-domain forest of trace_json into
   (span_id, parent_span_id, name, trace_id) tuples *)
let flatten_trace json =
  let rec walk acc node =
    let str k =
      match Json.member k node with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let entry =
      ( Option.value ~default:"" (str "span_id"),
        str "parent_span_id",
        Option.value ~default:"" (str "name"),
        Option.value ~default:"" (str "trace_id") )
    in
    let kids =
      match Json.member "children" node with
      | Some (Json.List l) -> l
      | _ -> []
    in
    List.fold_left walk (entry :: acc) kids
  in
  match Json.of_string json with
  | Error e -> Alcotest.fail ("trace_json does not parse: " ^ e)
  | Ok j -> (
      match Json.member "spans" j with
      | Some (Json.List roots) -> List.fold_left walk [] roots
      | _ -> Alcotest.fail "trace_json has no spans array")

(* reknit the logical tree by span ids and splice out the pool's
   "urs_pool_task" wrapper nodes, so jobs=1 (no wrapper) and jobs=4
   (one wrapper per task) compare shape-for-shape *)
let logical_roots nodes =
  let known = Hashtbl.create 64 in
  List.iter (fun (id, _, _, _) -> Hashtbl.replace known id ()) nodes;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun ((_, parent, _, _) as n) ->
        match parent with
        | Some p when Hashtbl.mem known p ->
            Hashtbl.add children p n;
            false
        | _ -> true)
      nodes
  in
  let rec build (id, _, name, _) =
    let kids = List.concat_map build (Hashtbl.find_all children id) in
    if name = "urs_pool_task" then kids else [ { sname = name; kids } ]
  in
  List.concat_map build roots

let test_pool_one_span_tree () =
  let inputs = List.init 8 Fun.id in
  let run ~domains =
    Context.set_seed 7;
    Span.set_tracing true;
    (* set_tracing clears any previous trace *)
    let root = Context.new_trace () in
    ignore
      (Context.with_current root (fun () ->
           Span.with_ ~name:"urs_cli" (fun () ->
               Pool.with_pool ~domains (fun pool ->
                   Pool.map pool
                     (fun x ->
                       Span.with_ ~name:"urs_point" (fun () ->
                           Ledger.record ~kind:"pool.task" ~wall_seconds:0.0 ();
                           x * x))
                     inputs))));
    let json = Span.trace_json () in
    Span.set_tracing false;
    Context.clear_seed ();
    (Context.trace_id_hex root, json)
  in
  Ledger.reset ();
  Ledger.set_memory true;
  Fun.protect ~finally:(fun () ->
      Span.set_tracing false;
      Context.clear_seed ();
      Ledger.reset ())
  @@ fun () ->
  let _, json1 = run ~domains:1 in
  Ledger.reset ();
  Ledger.set_memory true;
  let trace4, json4 = run ~domains:4 in
  let nodes4 = flatten_trace json4 in
  (* every span of the jobs=4 run — across all four domains — carries
     the one trace id minted by the submitter *)
  let trace_ids =
    List.sort_uniq compare (List.map (fun (_, _, _, t) -> t) nodes4)
  in
  Alcotest.(check (list string)) "single trace id" [ trace4 ] trace_ids;
  (* exactly one logical root: the urs_cli span, whose parent id points
     at the ambient root context (which owns no span) *)
  let roots4 = logical_roots nodes4 in
  Alcotest.(check int) "one connected tree" 1 (List.length roots4);
  (* structurally identical to the sequential run once the pool's
     wrapper spans are spliced out *)
  let shape1 = List.map canon (logical_roots (flatten_trace json1)) in
  let shape4 = List.map canon roots4 in
  Alcotest.(check bool) "same shape as jobs=1" true (shape1 = shape4);
  (match shape4 with
  | [ { sname = "urs_cli"; kids } ] ->
      Alcotest.(check int) "eight points" 8 (List.length kids);
      List.iter
        (fun k -> Alcotest.(check string) "point span" "urs_point" k.sname)
        kids
  | _ -> Alcotest.fail "expected a single urs_cli root");
  (* ledger records written on worker domains are stamped with the
     submitter's trace id *)
  let records =
    List.filter
      (fun r -> r.Ledger.kind = "pool.task")
      (Ledger.recent ~limit:100 ())
  in
  Alcotest.(check int) "eight task records" 8 (List.length records);
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        "record carries submitter trace" (Some trace4) r.Ledger.trace_id)
    records

let () =
  Alcotest.run "urs_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered results" `Quick
            test_pool_map_matches_list_map;
          Alcotest.test_case "empty and single" `Quick test_pool_empty_and_single;
          Alcotest.test_case "earliest exception wins" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "map_result reifies" `Quick test_pool_map_result;
          Alcotest.test_case "nested batches" `Quick test_pool_nested_map;
          Alcotest.test_case "map_reduce fold order" `Quick test_pool_map_reduce;
          Alcotest.test_case "shutdown under load" `Quick test_pool_shutdown;
          Alcotest.test_case "width accessor" `Quick test_pool_domains;
          Alcotest.test_case "gc accounting across widths" `Quick
            test_pool_gc_accounting;
        ] );
      ( "obs concurrency",
        [
          Alcotest.test_case "metrics totals exact" `Quick
            test_metrics_concurrent_exact;
          Alcotest.test_case "ledger ring exact" `Quick
            test_ledger_concurrent_ring;
          Alcotest.test_case "qr sweep counter exact" `Quick
            test_qr_sweep_counter_concurrent_exact;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick
            test_cache_hit_miss_counters;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "exceptions not cached" `Quick
            test_cache_exception_not_cached;
          Alcotest.test_case "first insert wins" `Quick
            test_cache_concurrent_first_insert_wins;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep identical across widths" `Slow
            test_sweep_identical_across_widths;
          Alcotest.test_case "replicate identical across widths" `Slow
            test_replicate_identical_across_widths;
          Alcotest.test_case "solve cache reuse" `Slow
            test_solve_cache_reuses_result;
          Alcotest.test_case "cache key exactness" `Quick
            test_solve_cache_key_distinguishes_models;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "one span tree across widths" `Quick
            test_pool_one_span_tree;
        ] );
    ]
