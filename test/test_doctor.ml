(* Regression tests for the numerical-health diagnostics and the doctor
   cross-checks: the paper's N=5 configuration must score a clean bill
   of health, and deliberately broken inputs must be flagged. *)

module Diagnostics = Urs_mmq.Diagnostics

let paper_qbd ~servers ~lambda =
  match Urs.Model.qbd (Urs.Doctor.paper_model ~servers ~lambda) with
  | Some q -> q
  | None -> Alcotest.fail "paper model should be phase-type"

let solved ~servers ~lambda =
  match Urs_mmq.Spectral.solve (paper_qbd ~servers ~lambda) with
  | Ok sol -> sol
  | Error e -> Alcotest.failf "solve failed: %a" Urs_mmq.Spectral.pp_error e

(* the headline regression: the N=5 paper model is numerically pristine *)
let test_n5_spectral_health () =
  let rep = Diagnostics.check_spectral (solved ~servers:5 ~lambda:4.0) in
  (match rep.Diagnostics.verdict with
  | Diagnostics.Ok -> ()
  | v ->
      Alcotest.failf "N=5 paper model should be Ok, got %s"
        (Format.asprintf "%a" Diagnostics.pp_verdict v));
  let assert_small name v =
    if not (v >= 0.0 && v < 1e-10) then
      Alcotest.failf "%s = %g not in [0, 1e-10)" name v
  in
  assert_small "balance residual" rep.Diagnostics.balance_residual;
  assert_small "eigenpair residual" rep.Diagnostics.eigen_residual;
  assert_small "mass defect" rep.Diagnostics.mass_defect;
  if rep.Diagnostics.boundary_condition > 1e6 then
    Alcotest.failf "boundary condition %g unexpectedly large"
      rep.Diagnostics.boundary_condition;
  if rep.Diagnostics.stability_margin <= 0.0 then
    Alcotest.fail "stability margin should be positive"

let test_eigen_residuals_per_pair () =
  let sol = solved ~servers:5 ~lambda:4.0 in
  let rs = Urs_mmq.Spectral.eigen_residuals sol in
  Alcotest.(check int)
    "one residual per eigenvalue"
    (Array.length (Urs_mmq.Spectral.eigenvalues sol))
    (Array.length rs);
  Array.iter
    (fun r ->
      if not (r >= 0.0 && r < 1e-10) then
        Alcotest.failf "eigenpair residual %g not in [0, 1e-10)" r)
    rs

let test_verdict_algebra () =
  let open Diagnostics in
  Alcotest.(check int) "ok severity" 0 (severity Ok);
  Alcotest.(check int) "degraded severity" 1 (severity (Degraded [ "a" ]));
  Alcotest.(check int) "suspect severity" 2 (severity (Suspect [ "b" ]));
  (match combine [ Ok; Degraded [ "x" ]; Ok ] with
  | Degraded [ "x" ] -> ()
  | v -> Alcotest.failf "combine: %s" (Format.asprintf "%a" pp_verdict v));
  (match combine [ Degraded [ "x" ]; Suspect [ "y" ] ] with
  | Suspect issues ->
      Alcotest.(check (list string)) "issues concatenated" [ "x"; "y" ] issues
  | v -> Alcotest.failf "combine: %s" (Format.asprintf "%a" pp_verdict v));
  match combine [] with
  | Ok -> ()
  | v -> Alcotest.failf "empty combine: %s" (Format.asprintf "%a" pp_verdict v)

let test_cross_check_scoring () =
  let open Diagnostics in
  (* agreeing exact methods *)
  (match check_exact_pair ~label:"t" 6.2385 (6.2385 +. 1e-12) with
  | _, Ok -> ()
  | _, v -> Alcotest.failf "tiny delta: %s" (Format.asprintf "%a" pp_verdict v));
  (* disagreeing exact methods *)
  (match check_exact_pair ~label:"t" 6.0 7.0 with
  | _, Suspect _ -> ()
  | _, v ->
      Alcotest.failf "gross delta: %s" (Format.asprintf "%a" pp_verdict v));
  (* simulation inside its confidence band *)
  (match
     check_simulation_agreement ~label:"t" ~exact:6.24 ~estimate:6.20
       ~half_width:0.1 ()
   with
  | _, Ok -> ()
  | _, v -> Alcotest.failf "in band: %s" (Format.asprintf "%a" pp_verdict v));
  (* simulation far outside *)
  (match
     check_simulation_agreement ~label:"t" ~exact:6.24 ~estimate:60.0
       ~half_width:0.1 ()
   with
  | _, Suspect _ -> ()
  | _, v -> Alcotest.failf "off by 10x: %s" (Format.asprintf "%a" pp_verdict v));
  (* tight and hopeless confidence intervals *)
  (match check_ci ~label:"t" ~estimate:6.24 ~half_width:0.01 () with
  | _, Ok -> ()
  | _, v -> Alcotest.failf "tight CI: %s" (Format.asprintf "%a" pp_verdict v));
  match check_ci ~label:"t" ~estimate:6.24 ~half_width:10.0 () with
  | _, Suspect _ -> ()
  | _, v -> Alcotest.failf "useless CI: %s" (Format.asprintf "%a" pp_verdict v)

let test_health_gauges () =
  let rep = Diagnostics.check_spectral (solved ~servers:5 ~lambda:4.0) in
  Diagnostics.observe_spectral rep;
  (match
     Urs_obs.Metrics.value
       ~labels:[ ("component", "spectral") ]
       "urs_health_status"
   with
  | Some 0.0 -> ()
  | v ->
      Alcotest.failf "health status gauge: %s"
        (match v with Some x -> string_of_float x | None -> "absent"));
  match
    Urs_obs.Metrics.value
      ~labels:[ ("check", "balance_residual") ]
      "urs_health_value"
  with
  | Some v when v >= 0.0 && v < 1e-10 -> ()
  | Some v -> Alcotest.failf "balance residual gauge %g" v
  | None -> Alcotest.fail "missing urs_health_value{check=balance_residual}"

let test_check_memory () =
  let open Diagnostics in
  (* comfortably inside the default budget, no observed pause *)
  (match
     check_memory ~label:"t" ~top_heap_words:1e6 ~worst_pause:None ()
   with
  | Ok -> ()
  | v -> Alcotest.failf "small heap: %s" (Format.asprintf "%a" pp_verdict v));
  (* a short pause is fine too *)
  (match
     check_memory ~label:"t" ~top_heap_words:1e6 ~worst_pause:(Some 0.005) ()
   with
  | Ok -> ()
  | v -> Alcotest.failf "short pause: %s" (Format.asprintf "%a" pp_verdict v));
  (* blowing the top-heap budget is SUSPECT *)
  (match
     check_memory ~label:"t" ~top_heap_words:1e12 ~worst_pause:None ()
   with
  | Suspect _ -> ()
  | v -> Alcotest.failf "huge heap: %s" (Format.asprintf "%a" pp_verdict v));
  (* so is a pathological major-GC pause *)
  (match
     check_memory ~label:"t" ~top_heap_words:1e6 ~worst_pause:(Some 30.0) ()
   with
  | Suspect _ -> ()
  | v -> Alcotest.failf "long pause: %s" (Format.asprintf "%a" pp_verdict v));
  (* thresholds are tunable *)
  let tight =
    { default_thresholds with memory_top_heap_words = 10.0 }
  in
  match
    check_memory ~thresholds:tight ~label:"t" ~top_heap_words:1e3
      ~worst_pause:None ()
  with
  | Suspect _ -> ()
  | v ->
      Alcotest.failf "tight budget: %s" (Format.asprintf "%a" pp_verdict v)

(* analytic-only doctor column: no simulation, so this stays fast while
   covering the spectral / matrix-geometric / approximation triangle *)
let test_check_model_analytic () =
  let checks =
    Urs.Doctor.check_model (Urs.Doctor.paper_model ~servers:5 ~lambda:4.0)
  in
  Alcotest.(check int) "three analytic checks" 3 (List.length checks);
  List.iter
    (fun (c : Urs.Doctor.check) ->
      match c.Urs.Doctor.verdict with
      | Diagnostics.Ok -> ()
      | v ->
          Alcotest.failf "%s should be Ok, got %s" c.Urs.Doctor.name
            (Format.asprintf "%a" Diagnostics.pp_verdict v))
    checks

(* ---- convergence grading ---- *)

(* synthetic iteration traces: samples are (residual, active, deflation) *)
let mk_trace ?max_iter ?(converged = true) ?(solver = "t") samples =
  let arr =
    Array.of_list
      (List.mapi
         (fun i (r, a, d) ->
           {
             Urs_obs.Convergence.iteration = i + 1;
             residual = r;
             shift = 0.0;
             active = a;
             deflation = d;
             t = 0.0;
           })
         samples)
  in
  let rs =
    List.filter Float.is_finite (List.map (fun (r, _, _) -> r) samples)
  in
  {
    Urs_obs.Convergence.seq = 1;
    solver;
    label = "unit";
    started = 0.0;
    finished = 1.0;
    iterations = List.length samples;
    max_iter;
    converged;
    deflations = List.length (List.filter (fun (_, _, d) -> d) samples);
    dropped = 0;
    samples = arr;
    residual_first = (match rs with r :: _ -> r | [] -> nan);
    residual_last = (match List.rev rs with r :: _ -> r | [] -> nan);
    residual_min = List.fold_left Float.min infinity rs;
    residual_mean = 0.0;
    residual_count = List.length rs;
  }

let test_check_convergence_grading () =
  let open Diagnostics in
  let expect what want (_, v) =
    let sev = severity v in
    if sev <> want then
      Alcotest.failf "%s: want severity %d, got %s" what want
        (Format.asprintf "%a" pp_verdict v)
  in
  let geo n rate = List.init n (fun i -> (rate ** float_of_int i, 0, false)) in
  (* healthy geometric contraction with plenty of cap headroom *)
  expect "healthy" 0
    (check_convergence ~label:"t" (mk_trace ~max_iter:100 (geo 30 0.5)));
  (* a non-converged trace is suspect on its own *)
  expect "not converged" 2
    (check_convergence ~label:"t" (mk_trace ~converged:false (geo 5 0.5)));
  (* burning >= 80% of the iteration cap is suspect even when converged *)
  let ratio, v =
    check_convergence ~label:"t" (mk_trace ~max_iter:10 (geo 9 0.5))
  in
  if severity v <> 2 then
    Alcotest.failf "cap proximity: got %s" (Format.asprintf "%a" pp_verdict v);
  if abs_float (ratio -. 0.9) > 1e-12 then
    Alcotest.failf "cap ratio: want 0.9, got %g" ratio;
  (* the active/remaining figure may never grow *)
  expect "non-monotone deflation" 2
    (check_convergence ~label:"t"
       (mk_trace [ (0.5, 5, false); (0.4, 6, false) ]));
  (* a flat residual over the stall window is suspect *)
  expect "stagnation" 2
    (check_convergence ~label:"t"
       (mk_trace (List.init 15 (fun _ -> (1e-3, 0, false)))));
  (* ... but only after the last deflation: a stalled-looking prefix
     that ends in a deflation is healthy QR behaviour *)
  expect "stall before deflation" 0
    (check_convergence ~label:"t"
       (mk_trace
          (List.init 14 (fun _ -> (1e-3, 5, false)) @ [ (0.0, 4, true) ])));
  (* slow linear contraction degrades *)
  expect "slow contraction" 1
    (check_convergence ~label:"t" (mk_trace (geo 30 0.999)));
  (* thresholds are tunable: the same trace passes a lax rate bound *)
  expect "lax rate threshold" 0
    (check_convergence
       ~thresholds:{ default_thresholds with conv_rate_degraded = 0.9999 }
       ~label:"t" (mk_trace (geo 30 0.999)))

(* ---- the doctor convergence stage ---- *)

let test_convergence_stage_healthy () =
  let checks =
    Urs.Doctor.check_convergence_stage
      (Urs.Doctor.paper_model ~servers:5 ~lambda:4.0)
  in
  List.iter
    (fun solver ->
      if
        not
          (List.exists
             (fun (c : Urs.Doctor.check) ->
               c.Urs.Doctor.name = "N=5 lambda=4 conv/" ^ solver)
             checks)
      then Alcotest.failf "missing conv/%s check" solver)
    [ "qr"; "mg_r"; "brent" ];
  List.iter
    (fun (c : Urs.Doctor.check) ->
      match c.Urs.Doctor.verdict with
      | Diagnostics.Ok -> ()
      | v ->
          Alcotest.failf "%s should be Ok, got %s" c.Urs.Doctor.name
            (Format.asprintf "%a" Diagnostics.pp_verdict v))
    checks

let test_convergence_stage_forced_stall () =
  let checks =
    Urs.Doctor.check_convergence_stage ~qr_max_iter:2
      (Urs.Doctor.paper_model ~servers:5 ~lambda:4.0)
  in
  let qr =
    List.find_opt
      (fun (c : Urs.Doctor.check) -> c.Urs.Doctor.name = "N=5 lambda=4 conv/qr")
      checks
  in
  (match qr with
  | Some c when Diagnostics.severity c.Urs.Doctor.verdict = 2 -> ()
  | Some c ->
      Alcotest.failf "stalled conv/qr should be Suspect, got %s"
        (Format.asprintf "%a" Diagnostics.pp_verdict c.Urs.Doctor.verdict)
  | None -> Alcotest.fail "missing conv/qr check for the stalled solve");
  (* the failed spectral solve itself is reported too *)
  if
    not
      (List.exists
         (fun (c : Urs.Doctor.check) ->
           c.Urs.Doctor.name = "N=5 lambda=4 conv/spectral"
           && Diagnostics.severity c.Urs.Doctor.verdict = 2)
         checks)
  then Alcotest.fail "missing suspect conv/spectral check"

(* tiny QR budget: the No_convergence payload must survive into the
   Spectral error message, the recorded trace and the ledger record *)
let test_no_convergence_escalation () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    nn = 0 || go 0
  in
  let q = paper_qbd ~servers:5 ~lambda:4.0 in
  Urs_obs.Ledger.set_memory true;
  let res, traces =
    Urs_obs.Convergence.with_recording (fun () ->
        Urs_mmq.Spectral.solve ~max_iter:2 q)
  in
  (match res with
  | Ok _ -> Alcotest.fail "max_iter=2 should not converge"
  | Error (Urs_mmq.Spectral.Numerical msg) ->
      if not (contains msg "did not converge" && contains msg "2 sweeps") then
        Alcotest.failf "payload lost from error message: %S" msg
  | Error e ->
      Alcotest.failf "unexpected error: %a" Urs_mmq.Spectral.pp_error e);
  (match
     List.find_opt
       (fun (tr : Urs_obs.Convergence.trace) ->
         tr.Urs_obs.Convergence.solver = "qr")
       traces
   with
  | Some tr ->
      Alcotest.(check bool)
        "trace not converged" false tr.Urs_obs.Convergence.converged;
      Alcotest.(check int) "iterations" 2 tr.Urs_obs.Convergence.iterations;
      Alcotest.(check (option int))
        "cap recorded" (Some 2) tr.Urs_obs.Convergence.max_iter
  | None -> Alcotest.fail "no qr trace recorded for the failed solve");
  (match
     List.find_opt
       (fun (r : Urs_obs.Ledger.record) ->
         r.Urs_obs.Ledger.kind = "convergence"
         && r.Urs_obs.Ledger.outcome = "no-convergence")
       (Urs_obs.Ledger.recent ())
   with
  | Some _ -> ()
  | None -> Alcotest.fail "no no-convergence ledger record");
  Urs_obs.Ledger.set_memory false

let test_near_saturation_degrades () =
  (* utilization ~0.9996: stable, but the margin probe must complain *)
  let q = paper_qbd ~servers:5 ~lambda:4.993 in
  match Urs_mmq.Spectral.solve q with
  | Error e ->
      Alcotest.failf "near-saturation solve failed: %a"
        Urs_mmq.Spectral.pp_error e
  | Ok sol -> (
      let rep = Diagnostics.check_spectral sol in
      match rep.Diagnostics.verdict with
      | Diagnostics.Ok ->
          Alcotest.failf "margin %g should not be Ok"
            rep.Diagnostics.stability_margin
      | Diagnostics.Degraded _ | Diagnostics.Suspect _ -> ())

let test_slo_stage () =
  (* the four drills (healthy/breached x error-rate/latency) replay an
     hour of synthetic traffic each under a fake clock; every check
     must come back Ok — a quiet healthy engine and an alarming
     breached one *)
  let checks = Urs.Doctor.check_slo_stage () in
  Alcotest.(check int) "four drills" 4 (List.length checks);
  List.iter
    (fun (c : Urs.Doctor.check) ->
      match c.Urs.Doctor.verdict with
      | Diagnostics.Ok -> ()
      | v ->
          Alcotest.failf "%s: %s (%s)" c.Urs.Doctor.name
            (Format.asprintf "%a" Diagnostics.pp_verdict v)
            c.Urs.Doctor.detail)
    checks

let test_perf_drift_stage () =
  (* seeded synthetic series with known answers: quiet noise, an
     injected 2x step caught within a few runs, magnitude ~2x *)
  let checks = Urs.Doctor.check_perf_drift_stage () in
  Alcotest.(check int) "three checks" 3 (List.length checks);
  List.iter
    (fun (c : Urs.Doctor.check) ->
      match c.Urs.Doctor.verdict with
      | Diagnostics.Ok -> ()
      | v ->
          Alcotest.failf "%s: %s (%s)" c.Urs.Doctor.name
            (Format.asprintf "%a" Diagnostics.pp_verdict v)
            c.Urs.Doctor.detail)
    checks

let () =
  Alcotest.run "urs_doctor"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "N=5 paper model is Ok" `Quick
            test_n5_spectral_health;
          Alcotest.test_case "per-eigenpair residuals" `Quick
            test_eigen_residuals_per_pair;
          Alcotest.test_case "verdict algebra" `Quick test_verdict_algebra;
          Alcotest.test_case "cross-check scoring" `Quick
            test_cross_check_scoring;
          Alcotest.test_case "health gauges" `Quick test_health_gauges;
          Alcotest.test_case "near saturation degrades" `Quick
            test_near_saturation_degrades;
          Alcotest.test_case "memory budget scoring" `Quick test_check_memory;
          Alcotest.test_case "convergence grading" `Quick
            test_check_convergence_grading;
        ] );
      ( "doctor",
        [
          Alcotest.test_case "analytic cross-checks" `Quick
            test_check_model_analytic;
          Alcotest.test_case "convergence stage healthy" `Quick
            test_convergence_stage_healthy;
          Alcotest.test_case "convergence stage forced stall" `Quick
            test_convergence_stage_forced_stall;
          Alcotest.test_case "no-convergence escalation" `Quick
            test_no_convergence_escalation;
          Alcotest.test_case "slo stage drills" `Quick test_slo_stage;
          Alcotest.test_case "perf-drift stage drills" `Quick
            test_perf_drift_stage;
        ] );
    ]
