(* Tests for the discrete-event simulator: event heap, deque, engine,
   collector, the server-farm model and replications. The key
   correctness tests validate the simulator against closed forms
   (M/M/c) and against the exact spectral solution. *)

open Urs_sim

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---- Event_heap ---- *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t (int_of_float t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

and test_heap_fifo_ties () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1.0 "first";
  Event_heap.push h ~time:1.0 "second";
  Event_heap.push h ~time:1.0 "third";
  let a = Event_heap.pop h and b = Event_heap.pop h and c = Event_heap.pop h in
  (match (a, b, c) with
  | Some (_, "first"), Some (_, "second"), Some (_, "third") -> ()
  | _ -> Alcotest.fail "equal-time events must preserve insertion order")

let test_heap_growth () =
  let h = Event_heap.create () in
  for i = 999 downto 0 do
    Event_heap.push h ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "size" 1000 (Event_heap.size h);
  let prev = ref neg_infinity in
  let rec drain () =
    match Event_heap.pop h with
    | Some (t, _) ->
        if t < !prev then Alcotest.fail "heap order violated";
        prev := t;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_random_property () =
  let g = Urs_prob.Rng.create 3 in
  let h = Event_heap.create () in
  for _ = 1 to 5000 do
    Event_heap.push h ~time:(Urs_prob.Rng.float g) ()
  done;
  let prev = ref neg_infinity in
  let rec drain n =
    match Event_heap.pop h with
    | Some (t, ()) ->
        if t < !prev then Alcotest.fail "order violated";
        prev := t;
        drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "all popped" 5000 (drain 0)

let test_heap_clear_resets_tiebreak () =
  (* clear must reset the FIFO sequence counter, so a cleared heap
     orders equal-time events exactly like a fresh one (regression for
     the counter carrying over across replications) *)
  let fresh = Event_heap.create () in
  let cleared = Event_heap.create () in
  for i = 0 to 99 do
    Event_heap.push cleared ~time:(float_of_int i) i
  done;
  Event_heap.clear cleared;
  List.iter
    (fun h ->
      Event_heap.push h ~time:1.0 10;
      Event_heap.push h ~time:1.0 20;
      Event_heap.push h ~time:0.5 0)
    [ fresh; cleared ];
  for _ = 1 to 3 do
    match (Event_heap.pop fresh, Event_heap.pop cleared) with
    | Some (ta, va), Some (tb, vb) when ta = tb && va = vb -> ()
    | _ -> Alcotest.fail "cleared heap diverges from fresh heap"
  done

(* ---- Index_heap ---- *)

let test_index_heap_ordering () =
  let h = Index_heap.create () in
  List.iter
    (fun t ->
      Index_heap.push h ~time:t ~kind:(int_of_float t) ~server:(-1) ~epoch:0)
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  while not (Index_heap.is_empty h) do
    order := Index_heap.top_kind h :: !order;
    Index_heap.drop h
  done;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_index_heap_fifo_ties () =
  let h = Index_heap.create () in
  Index_heap.push h ~time:1.0 ~kind:1 ~server:7 ~epoch:0;
  Index_heap.push h ~time:1.0 ~kind:2 ~server:8 ~epoch:1;
  Index_heap.push h ~time:1.0 ~kind:3 ~server:9 ~epoch:2;
  let seen = ref [] in
  while not (Index_heap.is_empty h) do
    seen :=
      (Index_heap.top_kind h, Index_heap.top_server h, Index_heap.top_epoch h)
      :: !seen;
    Index_heap.drop h
  done;
  Alcotest.(check bool) "insertion order on equal times" true
    (List.rev !seen = [ (1, 7, 0); (2, 8, 1); (3, 9, 2) ])

let test_index_heap_growth_and_recycling () =
  (* push past the initial capacity, drain, then reuse: slots must be
     recycled and ordering preserved *)
  let h = Index_heap.create ~capacity:4 () in
  for i = 999 downto 0 do
    Index_heap.push h ~time:(float_of_int i) ~kind:i ~server:(-1) ~epoch:0
  done;
  Alcotest.(check int) "size" 1000 (Index_heap.size h);
  let prev = ref neg_infinity in
  while not (Index_heap.is_empty h) do
    let t = Index_heap.top_time h in
    if t < !prev then Alcotest.fail "heap order violated";
    prev := t;
    Index_heap.drop h
  done;
  Alcotest.(check bool) "empty" true (Index_heap.is_empty h);
  (* second drain over the recycled slots *)
  let g = Urs_prob.Rng.create 3 in
  for _ = 1 to 5000 do
    Index_heap.push h ~time:(Urs_prob.Rng.float g) ~kind:0 ~server:(-1)
      ~epoch:0
  done;
  let prev = ref neg_infinity and n = ref 0 in
  while not (Index_heap.is_empty h) do
    let t = Index_heap.top_time h in
    if t < !prev then Alcotest.fail "order violated after recycling";
    prev := t;
    incr n;
    Index_heap.drop h
  done;
  Alcotest.(check int) "all dropped" 5000 !n

let test_index_heap_clear_resets_tiebreak () =
  (* port of the Event_heap guarantee: clear resets the sequence
     counter, so equal-time FIFO order restarts like a fresh heap *)
  let fresh = Index_heap.create () in
  let cleared = Index_heap.create () in
  for i = 0 to 99 do
    Index_heap.push cleared ~time:(float_of_int i) ~kind:i ~server:(-1)
      ~epoch:0
  done;
  Index_heap.clear cleared;
  Alcotest.(check int) "cleared is empty" 0 (Index_heap.size cleared);
  List.iter
    (fun h ->
      Index_heap.push h ~time:2.0 ~kind:1 ~server:(-1) ~epoch:0;
      Index_heap.push h ~time:2.0 ~kind:2 ~server:(-1) ~epoch:0;
      Index_heap.push h ~time:1.0 ~kind:3 ~server:(-1) ~epoch:0)
    [ fresh; cleared ];
  for _ = 1 to 3 do
    if
      Index_heap.top_time fresh <> Index_heap.top_time cleared
      || Index_heap.top_kind fresh <> Index_heap.top_kind cleared
    then Alcotest.fail "cleared heap diverges from fresh heap";
    Index_heap.drop fresh;
    Index_heap.drop cleared
  done

let test_index_heap_empty_drop_raises () =
  let h = Index_heap.create () in
  Alcotest.check_raises "drop on empty"
    (Invalid_argument "Index_heap.drop: empty heap") (fun () ->
      Index_heap.drop h)

(* ---- Int_deque ---- *)

let test_int_deque_fifo () =
  let d = Int_deque.create () in
  Int_deque.push_back d 1;
  Int_deque.push_back d 2;
  Int_deque.push_back d 3;
  Alcotest.(check int) "first" 1 (Int_deque.pop_front d);
  Alcotest.(check int) "second" 2 (Int_deque.pop_front d);
  Int_deque.push_back d 4;
  Alcotest.(check int) "third" 3 (Int_deque.pop_front d);
  Alcotest.(check int) "fourth" 4 (Int_deque.pop_front d);
  Alcotest.(check int) "empty sentinel" (-1) (Int_deque.pop_front d)

let test_int_deque_push_front () =
  let d = Int_deque.create () in
  Int_deque.push_back d 10;
  Int_deque.push_back d 11;
  Int_deque.push_front d 99;
  Alcotest.(check int) "preempted first" 99 (Int_deque.pop_front d);
  Alcotest.(check int) "then queued" 10 (Int_deque.pop_front d)

let test_int_deque_growth_wraparound () =
  (* force growth while head is mid-buffer so the unwrap copy runs *)
  let d = Int_deque.create ~capacity:4 () in
  for i = 0 to 2 do
    Int_deque.push_back d i
  done;
  ignore (Int_deque.pop_front d);
  ignore (Int_deque.pop_front d);
  for i = 3 to 40 do
    Int_deque.push_back d i
  done;
  Alcotest.(check int) "length" 39 (Int_deque.length d);
  for i = 2 to 40 do
    Alcotest.(check int) "order preserved" i (Int_deque.pop_front d)
  done;
  Alcotest.(check bool) "empty" true (Int_deque.is_empty d);
  Int_deque.push_front d 7;
  Alcotest.(check int) "front after wrap" 7 (Int_deque.pop_front d)

let test_int_deque_clear () =
  let d = Int_deque.create () in
  for i = 0 to 9 do
    Int_deque.push_back d i
  done;
  Int_deque.clear d;
  Alcotest.(check bool) "cleared" true (Int_deque.is_empty d);
  Int_deque.push_back d 5;
  Alcotest.(check int) "usable after clear" 5 (Int_deque.pop_front d)

(* ---- Deque ---- *)

let test_deque_fifo () =
  let d = Deque.create () in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_back d 3;
  Alcotest.(check (option int)) "first" (Some 1) (Deque.pop_front d);
  Alcotest.(check (option int)) "second" (Some 2) (Deque.pop_front d);
  Deque.push_back d 4;
  Alcotest.(check (option int)) "third" (Some 3) (Deque.pop_front d);
  Alcotest.(check (option int)) "fourth" (Some 4) (Deque.pop_front d);
  Alcotest.(check (option int)) "empty" None (Deque.pop_front d)

let test_deque_push_front () =
  (* a preempted job must come back before older queued jobs *)
  let d = Deque.create () in
  Deque.push_back d "queued1";
  Deque.push_back d "queued2";
  Deque.push_front d "preempted";
  Alcotest.(check (option string)) "preempted first" (Some "preempted")
    (Deque.pop_front d);
  Alcotest.(check (option string)) "then queued" (Some "queued1")
    (Deque.pop_front d)

let test_deque_length () =
  let d = Deque.create () in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  Deque.push_back d 1;
  Deque.push_front d 0;
  Alcotest.(check int) "length" 2 (Deque.length d);
  ignore (Deque.pop_front d);
  Alcotest.(check int) "after pop" 1 (Deque.length d)

(* ---- Engine ---- *)

let test_engine_order_and_clock () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:2.0 (fun e -> log := (Engine.now e, "b") :: !log);
  Engine.schedule eng ~delay:1.0 (fun e ->
      log := (Engine.now e, "a") :: !log;
      Engine.schedule e ~delay:0.5 (fun e -> log := (Engine.now e, "a2") :: !log));
  Engine.run_until eng 10.0;
  check_float "final clock" 10.0 (Engine.now eng);
  match List.rev !log with
  | [ (t1, "a"); (t2, "a2"); (t3, "b") ] ->
      check_float "t1" 1.0 t1;
      check_float "t2" 1.5 t2;
      check_float "t3" 2.0 t3
  | _ -> Alcotest.fail "wrong event order"

let test_engine_deadline_stops () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule eng ~delay:5.0 (fun _ -> fired := true);
  Engine.run_until eng 4.0;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Engine.pending eng);
  Engine.run_until eng 6.0;
  Alcotest.(check bool) "fired" true !fired

(* ---- Collector ---- *)

let test_collector_time_average () =
  let c = Collector.create () in
  Collector.set_jobs c ~now:0.0 2;
  (* 2 jobs on [0,4) *)
  Collector.set_jobs c ~now:4.0 0;
  (* 0 jobs on [4,10) *)
  check_float "time average" 0.8 (Collector.mean_jobs c ~now:10.0)

let test_collector_reset () =
  let c = Collector.create () in
  Collector.set_jobs c ~now:0.0 100;
  Collector.record_response c 42.0;
  Collector.reset c ~now:5.0;
  (* after reset: still 100 jobs in system, but no history *)
  check_float "mean after reset" 100.0 (Collector.mean_jobs c ~now:6.0);
  Alcotest.(check int) "responses cleared" 0 (Collector.completed c)

let test_collector_percentiles () =
  let c = Collector.create () in
  for i = 1 to 100 do
    Collector.record_response c (float_of_int i)
  done;
  check_float ~tol:0.6 "median" 50.5 (Collector.response_percentile c 0.5);
  check_float ~tol:1.1 "p90" 90.0 (Collector.response_percentile c 0.9);
  Alcotest.(check int) "count" 100 (Collector.completed c)

let test_collector_tracking_disabled () =
  let c = Collector.create ~track_responses:false () in
  Collector.record_response c 1.0;
  Alcotest.(check int) "welford still counts" 1 (Collector.completed c);
  Alcotest.check_raises "percentile raises"
    (Invalid_argument "Collector.response_percentile: tracking disabled")
    (fun () -> ignore (Collector.response_percentile c 0.5))

(* ---- Server_farm vs closed forms ---- *)

let reliable_operative = Urs_prob.Distribution.exponential ~rate:1e-9
let instant_repair = Urs_prob.Distribution.exponential ~rate:1e6

let test_sim_matches_mm1 () =
  (* effectively reliable single server: M/M/1 with ρ=0.7, L=2.333 *)
  let cfg =
    {
      Server_farm.servers = 1;
      lambda = 0.7;
      mu = 1.0;
      operative = reliable_operative;
      inoperative = instant_repair;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:11 ~duration:400_000.0 cfg in
  check_float ~tol:0.1 "L" (0.7 /. 0.3) r.Server_farm.mean_jobs;
  (* Little's law inside the simulation *)
  check_float ~tol:0.02 "W = L/λ"
    (r.Server_farm.mean_jobs /. 0.7)
    r.Server_farm.mean_response

let test_sim_matches_mmc () =
  let cfg =
    {
      Server_farm.servers = 3;
      lambda = 2.0;
      mu = 1.0;
      operative = reliable_operative;
      inoperative = instant_repair;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:13 ~duration:400_000.0 cfg in
  let expected = Urs_mmq.Mmc.mean_queue_length ~servers:3 ~lambda:2.0 ~mu:1.0 in
  check_float ~tol:0.08 "L vs Erlang C" expected r.Server_farm.mean_jobs

let test_sim_matches_spectral_with_breakdowns () =
  let op = Urs_prob.Distribution.h2 ~w1:0.7246 ~r1:0.1663 ~r2:0.0091 in
  let inop = Urs_prob.Distribution.exponential ~rate:25.0 in
  let cfg =
    { Server_farm.servers = 4; lambda = 3.0; mu = 1.0; operative = op;
      inoperative = inop; repair_crews = None }
  in
  let env =
    Urs_mmq.Environment.create ~servers:4
      ~operative:(Option.get (Urs_prob.Distribution.as_hyperexponential op))
      ~inoperative:(Option.get (Urs_prob.Distribution.as_hyperexponential inop))
  in
  let q = Urs_mmq.Qbd.create ~env ~lambda:3.0 ~mu:1.0 in
  let exact =
    match Urs_mmq.Spectral.solve q with
    | Ok sol -> Urs_mmq.Spectral.mean_queue_length sol
    | Error e -> Alcotest.failf "spectral failed: %a" Urs_mmq.Spectral.pp_error e
  in
  let s = Replicate.run ~seed:17 ~replications:5 ~duration:150_000.0 cfg in
  let est = s.Replicate.mean_jobs.Replicate.estimate in
  let hw = s.Replicate.mean_jobs.Replicate.half_width in
  if abs_float (est -. exact) > Float.max (3.0 *. hw) (0.05 *. exact) then
    Alcotest.failf "sim %.4f±%.4f vs exact %.4f" est hw exact

let test_sim_availability () =
  (* fraction of operative servers matches η/(ξ+η) *)
  let cfg =
    {
      Server_farm.servers = 5;
      lambda = 0.5;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.1;
      inoperative = Urs_prob.Distribution.exponential ~rate:0.4;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:19 ~duration:200_000.0 cfg in
  (* availability = (1/0.1)/(1/0.1 + 1/0.4) = 0.8 *)
  check_float ~tol:0.02 "mean operative" 4.0 r.Server_farm.mean_operative

let test_sim_deterministic_periods () =
  (* deterministic operative periods: the C²=0 case of Figure 6 *)
  let cfg =
    {
      Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.deterministic 30.0;
      inoperative = Urs_prob.Distribution.exponential ~rate:2.0;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:23 ~duration:100_000.0 cfg in
  Alcotest.(check bool) "completes jobs" true (r.Server_farm.completed > 10_000);
  Alcotest.(check bool) "finite queue" true (r.Server_farm.mean_jobs < 50.0)

let test_sim_seed_determinism () =
  let cfg =
    {
      Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.05;
      inoperative = Urs_prob.Distribution.exponential ~rate:10.0;
      repair_crews = None;
    }
  in
  let a = Server_farm.run ~seed:5 ~duration:10_000.0 cfg in
  let b = Server_farm.run ~seed:5 ~duration:10_000.0 cfg in
  check_float "reproducible" a.Server_farm.mean_jobs b.Server_farm.mean_jobs;
  let c = Server_farm.run ~seed:6 ~duration:10_000.0 cfg in
  Alcotest.(check bool) "seed changes stream" true
    (a.Server_farm.mean_jobs <> c.Server_farm.mean_jobs)

let test_sim_preempt_resume_conserves_work () =
  (* with breakdowns, throughput must still equal λ in steady state
     (all work is eventually served; preempt-resume loses nothing) *)
  let cfg =
    {
      Server_farm.servers = 3;
      lambda = 1.5;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.2;
      inoperative = Urs_prob.Distribution.exponential ~rate:1.0;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:29 ~duration:200_000.0 cfg in
  let throughput = float_of_int r.Server_farm.completed /. r.Server_farm.measured_time in
  check_float ~tol:0.02 "throughput = λ" 1.5 throughput

let test_sim_validation_errors () =
  let cfg =
    {
      Server_farm.servers = 0;
      lambda = 1.0;
      mu = 1.0;
      operative = reliable_operative;
      inoperative = instant_repair;
      repair_crews = None;
    }
  in
  Alcotest.check_raises "servers >= 1"
    (Invalid_argument "Server_farm: servers must be >= 1") (fun () ->
      Server_farm.validate cfg)

let test_sim_response_percentiles_present () =
  let cfg =
    {
      Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.05;
      inoperative = Urs_prob.Distribution.exponential ~rate:10.0;
      repair_crews = None;
    }
  in
  let r = Server_farm.run ~seed:31 ~duration:20_000.0 cfg in
  Alcotest.(check bool) "responses recorded" true
    (Array.length r.Server_farm.responses > 1000);
  let p90 = Urs_stats.Empirical.quantile r.Server_farm.responses 0.9 in
  let p50 = Urs_stats.Empirical.quantile r.Server_farm.responses 0.5 in
  Alcotest.(check bool) "p90 > p50" true (p90 > p50)

let test_sim_repair_crews_match_exact () =
  (* one repair crew, exponential repairs: the simulator's FCFS repair
     shop must match the analytic min(y,c)·η model *)
  let cfg =
    {
      Server_farm.servers = 6;
      lambda = 2.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.1;
      inoperative = Urs_prob.Distribution.exponential ~rate:0.5;
      repair_crews = Some 1;
    }
  in
  let m =
    Urs.Model.create ~repair_crews:1 ~servers:6 ~arrival_rate:2.0
      ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.exponential ~rate:0.1)
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.5) ()
  in
  let exact = (Urs.Solver.evaluate_exn m).Urs.Solver.mean_jobs in
  let s = Replicate.run ~seed:43 ~replications:5 ~duration:150_000.0 cfg in
  let est = s.Replicate.mean_jobs.Replicate.estimate in
  let hw = s.Replicate.mean_jobs.Replicate.half_width in
  if abs_float (est -. exact) > Float.max (4.0 *. hw) (0.05 *. exact) then
    Alcotest.failf "crews sim %.4f±%.4f vs exact %.4f" est hw exact

let test_sim_crews_slow_down_repairs () =
  let base crews =
    {
      Server_farm.servers = 5;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.2;
      inoperative = Urs_prob.Distribution.exponential ~rate:0.5;
      repair_crews = crews;
    }
  in
  let ops crews =
    (Server_farm.run ~seed:47 ~duration:100_000.0 (base crews))
      .Server_farm.mean_operative
  in
  Alcotest.(check bool) "fewer crews, fewer operative servers" true
    (ops (Some 1) < ops None)

(* ---- Replicate ---- *)

let test_replicate_ci_narrows () =
  let cfg =
    {
      Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.05;
      inoperative = Urs_prob.Distribution.exponential ~rate:10.0;
      repair_crews = None;
    }
  in
  let short = Replicate.run ~seed:37 ~replications:5 ~duration:5_000.0 cfg in
  let long = Replicate.run ~seed:37 ~replications:5 ~duration:80_000.0 cfg in
  Alcotest.(check bool) "longer runs narrow the CI" true
    (long.Replicate.mean_jobs.Replicate.half_width
    < short.Replicate.mean_jobs.Replicate.half_width)

let test_replicate_pinned_summary () =
  (* regression pin for the split-stream per-replication seeding: every
     replication seed is a full 62-bit draw from a master splitmix64
     stream keyed by ~seed. These values change only if the seeding
     scheme or the simulator's event handling changes — update them
     deliberately, never to make the test pass. *)
  let cfg =
    {
      Server_farm.servers = 2;
      lambda = 1.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.05;
      inoperative = Urs_prob.Distribution.exponential ~rate:10.0;
      repair_crews = None;
    }
  in
  let s = Replicate.run ~seed:123 ~replications:3 ~duration:2_000.0 cfg in
  let check name expected got = Alcotest.(check (float 1e-6)) name expected got in
  check "mean jobs" 1.36661027453 s.Replicate.mean_jobs.Replicate.estimate;
  check "mean jobs CI" 0.251445645386 s.Replicate.mean_jobs.Replicate.half_width;
  check "mean response" 1.35809262083
    s.Replicate.mean_response.Replicate.estimate;
  check "mean response CI" 0.182173906069
    s.Replicate.mean_response.Replicate.half_width

(* ---- allocation regression ---- *)

let test_sim_allocation_per_event () =
  (* the engine must not regress to per-event closure/boxing traffic.
     In the release profile it runs at ~0.06 minor words/event; the dev
     profile compiles with -opaque (no cross-module inlining), which
     boxes float arguments at module boundaries and costs ~12
     words/event. The old closure-based engine allocated ~77, so a
     threshold of 32 catches a structural regression under either
     profile while staying immune to compiler-flag noise. *)
  let cfg =
    {
      Server_farm.servers = 4;
      lambda = 3.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.h2 ~w1:0.7246 ~r1:0.1663 ~r2:0.0091;
      inoperative = Urs_prob.Distribution.exponential ~rate:25.0;
      repair_crews = None;
    }
  in
  (* warm the pools so steady-state growth is done *)
  ignore (Server_farm.run ~seed:61 ~track_responses:false ~duration:2_000.0 cfg);
  let before = Gc.minor_words () in
  let r =
    Server_farm.run ~seed:61 ~track_responses:false ~duration:20_000.0 cfg
  in
  let words = Gc.minor_words () -. before in
  let per_event = words /. float_of_int r.Server_farm.events in
  if per_event > 32.0 then
    Alcotest.failf "allocation regression: %.2f minor words/event" per_event

let () =
  Alcotest.run "urs_sim"
    [
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "random stream" `Quick test_heap_random_property;
          Alcotest.test_case "clear resets tie-break" `Quick
            test_heap_clear_resets_tiebreak;
        ] );
      ( "index_heap",
        [
          Alcotest.test_case "ordering" `Quick test_index_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_index_heap_fifo_ties;
          Alcotest.test_case "growth and slot recycling" `Quick
            test_index_heap_growth_and_recycling;
          Alcotest.test_case "clear resets tie-break" `Quick
            test_index_heap_clear_resets_tiebreak;
          Alcotest.test_case "drop on empty raises" `Quick
            test_index_heap_empty_drop_raises;
        ] );
      ( "int_deque",
        [
          Alcotest.test_case "fifo" `Quick test_int_deque_fifo;
          Alcotest.test_case "push front (preemption)" `Quick
            test_int_deque_push_front;
          Alcotest.test_case "growth with wraparound" `Quick
            test_int_deque_growth_wraparound;
          Alcotest.test_case "clear" `Quick test_int_deque_clear;
        ] );
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "push front (preemption)" `Quick
            test_deque_push_front;
          Alcotest.test_case "length" `Quick test_deque_length;
        ] );
      ( "engine",
        [
          Alcotest.test_case "event order and clock" `Quick
            test_engine_order_and_clock;
          Alcotest.test_case "deadline stops processing" `Quick
            test_engine_deadline_stops;
        ] );
      ( "collector",
        [
          Alcotest.test_case "time average" `Quick test_collector_time_average;
          Alcotest.test_case "reset" `Quick test_collector_reset;
          Alcotest.test_case "percentiles" `Quick test_collector_percentiles;
          Alcotest.test_case "tracking disabled" `Quick
            test_collector_tracking_disabled;
        ] );
      ( "server_farm",
        [
          Alcotest.test_case "matches M/M/1" `Slow test_sim_matches_mm1;
          Alcotest.test_case "matches M/M/3" `Slow test_sim_matches_mmc;
          Alcotest.test_case "matches spectral with breakdowns" `Slow
            test_sim_matches_spectral_with_breakdowns;
          Alcotest.test_case "availability" `Slow test_sim_availability;
          Alcotest.test_case "deterministic periods (C²=0)" `Slow
            test_sim_deterministic_periods;
          Alcotest.test_case "seed determinism" `Quick test_sim_seed_determinism;
          Alcotest.test_case "preempt-resume conserves work" `Slow
            test_sim_preempt_resume_conserves_work;
          Alcotest.test_case "config validation" `Quick test_sim_validation_errors;
          Alcotest.test_case "response percentiles" `Quick
            test_sim_response_percentiles_present;
        ] );
      ( "repair crews",
        [
          Alcotest.test_case "matches exact" `Slow test_sim_repair_crews_match_exact;
          Alcotest.test_case "crews bound repairs" `Slow
            test_sim_crews_slow_down_repairs;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "ci narrows with duration" `Slow
            test_replicate_ci_narrows;
          Alcotest.test_case "pinned summary (split-stream seeds)" `Slow
            test_replicate_pinned_summary;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "minor words per event bounded" `Slow
            test_sim_allocation_per_event;
        ] );
    ]
