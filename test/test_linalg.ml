(* Tests for the dense linear-algebra substrate: vectors, matrices, LU,
   QR, the Hessenberg/QR eigensolver, companion linearization and root
   finding. *)

open Urs_linalg

let approx ?(tol = 1e-9) a b = abs_float (a -. b) <= tol

let check_float ?(tol = 1e-9) msg expected actual =
  if not (approx ~tol expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let rand_state = Random.State.make [| 20260704 |]

let random_matrix n =
  Matrix.init n n (fun _ _ -> Random.State.float rand_state 2.0 -. 1.0)

(* ---- Vec ---- *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; -2.0; 3.0 ] in
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v);
  check_float "norm_inf" 3.0 (Vec.norm_inf v);
  check_float "sum" 2.0 (Vec.sum v);
  Alcotest.(check int) "max_abs_index" 2 (Vec.max_abs_index v);
  let w = Vec.add v (Vec.scale 2.0 v) in
  check_float "axpy-like" 9.0 w.(2)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 2.0 ] and y = Vec.of_list [ 10.0; 20.0 ] in
  Vec.axpy 3.0 x y;
  check_float "axpy 0" 13.0 y.(0);
  check_float "axpy 1" 26.0 y.(1)

let test_vec_normalize () =
  let v = Vec.normalize (Vec.of_list [ 3.0; 4.0 ]) in
  check_float "unit norm" 1.0 (Vec.norm2 v);
  check_float "direction" 0.6 v.(0)

let test_vec_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec: dimension mismatch")
    (fun () -> ignore (Vec.add (Vec.create 2) (Vec.create 3)))

(* ---- Matrix ---- *)

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_identity_mul () =
  let a = random_matrix 7 in
  let i = Matrix.identity 7 in
  Alcotest.(check bool) "aI = a" true (Matrix.approx_equal (Matrix.mul a i) a);
  Alcotest.(check bool) "Ia = a" true (Matrix.approx_equal (Matrix.mul i a) a)

let test_matrix_transpose () =
  let a = random_matrix 5 in
  Alcotest.(check bool) "transpose involution" true
    (Matrix.approx_equal (Matrix.transpose (Matrix.transpose a)) a)

let test_matrix_vec_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let x = Vec.of_list [ 1.0; 1.0 ] in
  let y = Matrix.mul_vec a x in
  check_float "mul_vec 0" 3.0 y.(0);
  check_float "mul_vec 1" 7.0 y.(1);
  let z = Matrix.vec_mul x a in
  check_float "vec_mul 0" 4.0 z.(0);
  check_float "vec_mul 1" 6.0 z.(1)

let test_matrix_row_sums () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| -3.0; 4.0 |] |] in
  let rs = Matrix.row_sums a in
  check_float "row sum 0" 3.0 rs.(0);
  check_float "row sum 1" 1.0 rs.(1);
  check_float "trace" 5.0 (Matrix.trace a)

let test_matrix_blit () =
  let dst = Matrix.create 4 4 in
  let src = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Matrix.blit ~src ~dst 1 2;
  check_float "blit" 4.0 (Matrix.get dst 2 3);
  check_float "blit untouched" 0.0 (Matrix.get dst 0 0)

(* ---- Lu ---- *)

let test_lu_solve () =
  let a = Matrix.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  let b = Vec.of_list [ 10.0; 12.0 ] in
  match Lu.solve_system a b with
  | Ok x ->
      check_float "x0" 1.0 x.(0);
      check_float "x1" 2.0 x.(1)
  | Error `Singular -> Alcotest.fail "unexpected singular"

let test_lu_random_residual () =
  for n = 1 to 12 do
    let a = random_matrix n in
    let b = Vec.init n (fun _ -> Random.State.float rand_state 1.0) in
    match Lu.solve_system a b with
    | Ok x ->
        let r = Vec.norm_inf (Vec.sub (Matrix.mul_vec a x) b) in
        if r > 1e-9 then Alcotest.failf "residual %g at n=%d" r n
    | Error `Singular -> () (* random singular matrix: astronomically rare *)
  done

let test_lu_transposed_solve () =
  let a = random_matrix 8 in
  let b = Vec.init 8 (fun i -> float_of_int (i + 1)) in
  let f = Lu.factor_exn a in
  let x = Lu.solve_transposed f b in
  let r = Vec.norm_inf (Vec.sub (Matrix.mul_vec (Matrix.transpose a) x) b) in
  if r > 1e-9 then Alcotest.failf "transposed residual %g" r

let test_lu_det () =
  let a = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  check_float "det" 6.0 (Lu.det a);
  let sing = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_float "singular det" 0.0 (Lu.det sing)

let test_lu_det_permutation_sign () =
  (* a matrix needing a row swap: det must keep its sign *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "det with pivot" (-1.0) (Lu.det a)

let test_lu_inverse () =
  let a = random_matrix 6 in
  match Lu.inverse a with
  | Ok inv ->
      Alcotest.(check bool) "a a⁻¹ = I" true
        (Matrix.approx_equal ~tol:1e-8 (Matrix.mul a inv) (Matrix.identity 6))
  | Error `Singular -> Alcotest.fail "unexpected singular"

let test_lu_log_det () =
  let a = Matrix.scalar 5 2.0 in
  let log_d, sign = Lu.log_abs_det a in
  Alcotest.(check int) "sign" 1 sign;
  check_float "log det" (5.0 *. log 2.0) log_d

let test_lu_singular_detection () =
  let sing = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  (match Lu.factor sing with
  | Error `Singular -> ()
  | Ok _ -> Alcotest.fail "expected singular")

(* ---- Qr ---- *)

let test_qr_square_solve () =
  let a = random_matrix 9 in
  let b = Vec.init 9 (fun i -> sin (float_of_int i)) in
  let x = Qr.solve a b in
  if Qr.residual_norm a x b > 1e-8 then Alcotest.fail "qr residual too large"

let test_qr_least_squares () =
  (* overdetermined: fit y = 2x + 1 exactly *)
  let a = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let b = Vec.of_list [ 3.0; 5.0; 7.0 ] in
  let x = Qr.solve a b in
  check_float ~tol:1e-10 "slope" 2.0 x.(0);
  check_float ~tol:1e-10 "intercept" 1.0 x.(1)

let test_qr_r_triangular () =
  let a = random_matrix 6 in
  let f = Qr.factor a in
  let r = Qr.r f in
  for i = 1 to 5 do
    for j = 0 to i - 1 do
      check_float "below-diagonal zero" 0.0 (Matrix.get r i j)
    done
  done

(* ---- eigenvalues ---- *)

let sorted_eigs m =
  let e = Eigen.eigenvalues m in
  Array.sort Cx.compare_by_modulus e;
  e

let test_eigen_diagonal () =
  let a = Matrix.diagonal (Vec.of_list [ 3.0; 1.0; 2.0 ]) in
  let e = sorted_eigs a in
  check_float "e0" 1.0 (Cx.re e.(0));
  check_float "e1" 2.0 (Cx.re e.(1));
  check_float "e2" 3.0 (Cx.re e.(2))

let test_eigen_complex_pair () =
  let a = Matrix.of_arrays [| [| 0.0; -1.0 |]; [| 1.0; 0.0 |] |] in
  let e = sorted_eigs a in
  check_float "re" 0.0 (Cx.re e.(0));
  check_float "im magnitude" 1.0 (abs_float (Cx.im e.(0)));
  check_float "conjugate" 0.0 (Cx.im e.(0) +. Cx.im e.(1))

let test_eigen_trace_det_identity () =
  for n = 2 to 14 do
    let a = random_matrix n in
    let e = Eigen.eigenvalues a in
    let sum = Array.fold_left Cx.add Cx.zero e in
    let prod = Array.fold_left Cx.mul Cx.one e in
    check_float ~tol:1e-7 "sum = trace" (Matrix.trace a) (Cx.re sum);
    check_float ~tol:1e-7 "sum imag = 0" 0.0 (Cx.im sum);
    let det = Lu.det a in
    let scale = Float.max 1.0 (abs_float det) in
    if abs_float (Cx.re prod -. det) /. scale > 1e-6 then
      Alcotest.failf "det mismatch at n=%d: %g vs %g" n (Cx.re prod) det
  done

let test_eigen_known_3x3 () =
  (* triangular: eigenvalues are the diagonal *)
  let a =
    Matrix.of_arrays [| [| 5.0; 1.0; 2.0 |]; [| 0.0; -2.0; 7.0 |]; [| 0.0; 0.0; 3.0 |] |]
  in
  let e = sorted_eigs a in
  check_float ~tol:1e-8 "e0" (-2.0) (Cx.re e.(0));
  check_float ~tol:1e-8 "e1" 3.0 (Cx.re e.(1));
  check_float ~tol:1e-8 "e2" 5.0 (Cx.re e.(2))

let test_eigenvector_residuals () =
  let a = random_matrix 10 in
  let e = Eigen.eigenvalues a in
  Array.iter
    (fun z ->
      let v = Eigen.right_eigenvector a z in
      let u = Eigen.left_eigenvector a z in
      if Eigen.residual_right a z v > 1e-8 then Alcotest.fail "right residual";
      if Eigen.residual_left a z u > 1e-8 then Alcotest.fail "left residual")
    e

let test_hessenberg_preserves_eigenvalues () =
  let a = random_matrix 8 in
  let h = Hessenberg.reduce a in
  Alcotest.(check bool) "is hessenberg" true (Hessenberg.is_hessenberg h);
  let e1 = sorted_eigs a in
  let e2 = Qr_eig.eigenvalues_hessenberg h in
  Array.sort Cx.compare_by_modulus e2;
  Array.iteri
    (fun i z ->
      if Cx.modulus (Cx.sub z e2.(i)) > 1e-7 then
        Alcotest.fail "eigenvalues differ after reduction")
    e1

let test_balance_preserves_eigenvalues () =
  let a =
    Matrix.of_arrays
      [| [| 1.0; 1e6 |]; [| 1e-6; 2.0 |] |]
  in
  let b = Hessenberg.balance a in
  let e1 = sorted_eigs a and e2 = sorted_eigs b in
  Array.iteri
    (fun i z ->
      if Cx.modulus (Cx.sub z e2.(i)) > 1e-7 then
        Alcotest.fail "balancing changed the spectrum")
    e1

(* ---- companion / quadratic eigenproblem ---- *)

let test_companion_scalar_quadratic () =
  (* scalar: 2 - 3z + z² = (z-1)(z-2): roots 1, 2 — none inside disk *)
  let m x = Matrix.of_arrays [| [| x |] |] in
  let zs =
    Companion.eigenvalues_inside_unit_disk ~q0:(m 2.0) ~q1:(m (-3.0)) ~q2:(m 1.0) ()
  in
  Alcotest.(check int) "no roots inside" 0 (Array.length zs)

let test_companion_scalar_root_inside () =
  (* (z - 1/2)(z - 3) = 3/2 - 3.5z + z² : root 0.5 inside *)
  let m x = Matrix.of_arrays [| [| x |] |] in
  let zs =
    Companion.eigenvalues_inside_unit_disk ~q0:(m 1.5) ~q1:(m (-3.5)) ~q2:(m 1.0) ()
  in
  Alcotest.(check int) "one root" 1 (Array.length zs);
  check_float ~tol:1e-10 "root value" 0.5 (Cx.re zs.(0))

let test_companion_singular_q2 () =
  (* singular Q2 produces "infinite" roots that must be discarded:
     Q(z) = diag(1.5 - 3.5z + z², 0.25 - 1.25z) — roots 0.5, 3, 0.2 *)
  let q0 = Matrix.diagonal (Vec.of_list [ 1.5; 0.25 ]) in
  let q1 = Matrix.diagonal (Vec.of_list [ -3.5; -1.25 ]) in
  let q2 = Matrix.diagonal (Vec.of_list [ 1.0; 0.0 ]) in
  let zs = Companion.eigenvalues_inside_unit_disk ~q0 ~q1 ~q2 () in
  Alcotest.(check int) "two inside" 2 (Array.length zs);
  check_float ~tol:1e-10 "z0" 0.2 (Cx.re zs.(0));
  check_float ~tol:1e-10 "z1" 0.5 (Cx.re zs.(1))

let test_companion_eigen_satisfy_det () =
  (* random quadratic, all roots found satisfy |det Q(z)| ≈ 0 *)
  let q0 = random_matrix 4 and q1 = random_matrix 4 and q2 = random_matrix 4 in
  let zs = Companion.eigenvalues_inside_unit_disk ~q0 ~q1 ~q2 () in
  Array.iter
    (fun z ->
      let d = Clu.det (Companion.evaluate ~q0 ~q1 ~q2 z) in
      if Cx.modulus d > 1e-6 then
        Alcotest.failf "det Q(z) = %g at claimed root" (Cx.modulus d))
    zs

(* ---- complex modules ---- *)

let test_clu_solve () =
  let n = 6 in
  let a =
    Cmatrix.init n n (fun i j ->
        Cx.make (Random.State.float rand_state 1.0)
          (if i = j then 0.5 else Random.State.float rand_state 0.2))
  in
  let b = Cvec.init n (fun i -> Cx.make (float_of_int i) 1.0) in
  match Clu.solve_system a b with
  | Ok x ->
      let r = Cvec.norm_inf (Cvec.sub (Cmatrix.mul_vec a x) b) in
      if r > 1e-9 then Alcotest.failf "complex residual %g" r
  | Error `Singular -> Alcotest.fail "unexpected singular"

let test_clu_null_vector () =
  (* construct a singular complex matrix with known null vector (1, -1) *)
  let a =
    Cmatrix.init 2 2 (fun i j ->
        let v = [| [| 2.0; 2.0 |]; [| 3.0; 3.0 |] |] in
        Cx.of_float v.(i).(j))
  in
  let v = Clu.null_vector a in
  let r = Cvec.norm_inf (Cmatrix.mul_vec a v) in
  if r > 1e-9 then Alcotest.failf "null vector residual %g" r;
  check_float "unit norm" 1.0 (Cvec.norm2 v)

let test_clu_left_null_vector () =
  let a =
    Cmatrix.init 2 2 (fun i j ->
        let v = [| [| 2.0; 4.0 |]; [| 1.0; 2.0 |] |] in
        Cx.of_float v.(i).(j))
  in
  let u = Clu.left_null_vector a in
  let r = Cvec.norm_inf (Cmatrix.vec_mul u a) in
  if r > 1e-9 then Alcotest.failf "left null residual %g" r

let test_clu_det () =
  let a = Cmatrix.init 2 2 (fun i j -> if i = j then Cx.make 0.0 1.0 else Cx.zero) in
  let d = Clu.det a in
  check_float "det re" (-1.0) (Cx.re d);
  check_float "det im" 0.0 (Cx.im d)

let test_cvec_normalize_phase () =
  let v = Cvec.init 2 (fun i -> if i = 0 then Cx.make 0.0 2.0 else Cx.one) in
  let n = Cvec.normalize v in
  (* dominant component must be rotated to the positive real axis *)
  check_float "dominant is real" 0.0 (Cx.im n.(Cvec.max_abs_index n));
  Alcotest.(check bool) "dominant positive" true (Cx.re n.(Cvec.max_abs_index n) > 0.0)

let test_cmatrix_arithmetic () =
  let a = Cmatrix.init 2 2 (fun i j -> Cx.make (float_of_int (i + j)) 1.0) in
  let b = Cmatrix.identity 2 in
  let sum = Cmatrix.add a b in
  if not (Cx.approx_equal (Cmatrix.get sum 0 0) (Cx.make 1.0 1.0)) then
    Alcotest.fail "add wrong";
  let diff = Cmatrix.sub sum b in
  Alcotest.(check bool) "sub inverts add" true (Cmatrix.approx_equal diff a);
  let scaled = Cmatrix.scale (Cx.make 0.0 1.0) b in
  (* i·I: conj transpose is −i·I *)
  let ct = Cmatrix.conj_transpose scaled in
  if not (Cx.approx_equal (Cmatrix.get ct 0 0) (Cx.make 0.0 (-1.0))) then
    Alcotest.fail "conj transpose wrong"

let test_cx_helpers () =
  let z = Cx.make 3.0 4.0 in
  check_float "modulus" 5.0 (Cx.modulus z);
  check_float "modulus2" 25.0 (Cx.modulus2 z);
  check_float "abs1" 7.0 (Cx.abs1 z);
  Alcotest.(check bool) "is_real false" false (Cx.is_real z);
  Alcotest.(check bool) "is_real true" true (Cx.is_real (Cx.of_float 2.0));
  let w = Cx.div z z in
  Alcotest.(check bool) "z/z = 1" true (Cx.approx_equal w Cx.one);
  Alcotest.(check int) "compare by modulus" (-1)
    (Cx.compare_by_modulus Cx.one z)

let test_qr_apply_qt_preserves_norm () =
  (* Q is orthogonal, so ‖Qᵀb‖ = ‖b‖ *)
  let a = random_matrix 7 in
  let f = Qr.factor a in
  let b = Vec.init 7 (fun i -> cos (float_of_int i)) in
  check_float ~tol:1e-10 "norm preserved" (Vec.norm2 b) (Vec.norm2 (Qr.apply_qt f b))

let test_eigen_symmetric_real_spectrum () =
  (* symmetric matrices have real eigenvalues *)
  let n = 8 in
  let half = random_matrix n in
  let a = Matrix.scale 0.5 (Matrix.add half (Matrix.transpose half)) in
  let e = Eigen.eigenvalues a in
  Array.iter
    (fun z ->
      if abs_float (Cx.im z) > 1e-7 then
        Alcotest.failf "complex eigenvalue %a of a symmetric matrix" Cx.pp z)
    e

let test_eigen_stochastic_has_unit_eigenvalue () =
  (* a row-stochastic matrix has eigenvalue 1 *)
  let n = 6 in
  let raw = Matrix.init n n (fun _ _ -> Random.State.float rand_state 1.0 +. 0.01) in
  let a =
    Matrix.init n n (fun i j ->
        Matrix.get raw i j /. Vec.sum (Matrix.row raw i))
  in
  let e = Eigen.eigenvalues a in
  let has_one =
    Array.exists (fun z -> Cx.modulus (Cx.sub z Cx.one) < 1e-8) e
  in
  Alcotest.(check bool) "eigenvalue 1 present" true has_one

(* ---- root finding ---- *)

let test_bisect () =
  let root = Rootfind.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_float ~tol:1e-10 "sqrt 2" (sqrt 2.0) root

let test_brent () =
  let root = Rootfind.brent (fun x -> cos x -. x) 0.0 1.0 in
  check_float ~tol:1e-10 "dottie number" 0.7390851332151607 root

let test_brent_linear () =
  let root = Rootfind.brent (fun x -> (2.0 *. x) -. 1.0) 0.0 10.0 in
  check_float ~tol:1e-9 "linear root" 0.5 root

let test_largest_root () =
  (* roots at 0.3 and 0.8: must find 0.8 *)
  let f x = (x -. 0.3) *. (x -. 0.8) in
  match Rootfind.largest_root_in f 0.0 1.0 with
  | Some r -> check_float ~tol:1e-9 "largest root" 0.8 r
  | None -> Alcotest.fail "no root found"

let test_largest_root_none () =
  match Rootfind.largest_root_in (fun x -> x +. 1.0) 0.0 1.0 with
  | Some _ -> Alcotest.fail "expected no root"
  | None -> ()

(* ---- iteration exhaustion and observation ---- *)

let test_bisect_exhausted () =
  match
    Rootfind.bisect ~max_iter:3 ~tol:1e-15 (fun x -> (x *. x) -. 2.0) 0.0 2.0
  with
  | exception Rootfind.Exhausted { name; iterations; width; best } ->
      Alcotest.(check string) "solver name" "bisect" name;
      Alcotest.(check int) "iterations in payload" 3 iterations;
      if not (width > 0.0 && width < 2.0) then
        Alcotest.failf "bracket width %g not narrowed" width;
      if not (best > 0.0 && best < 2.0) then
        Alcotest.failf "best estimate %g outside bracket" best
  | _ -> Alcotest.fail "3 bisections cannot reach 1e-15"

let test_brent_exhausted () =
  match Rootfind.brent ~max_iter:2 ~tol:1e-15 (fun x -> cos x -. x) 0.0 1.0 with
  | exception Rootfind.Exhausted { name; iterations; _ } ->
      Alcotest.(check string) "solver name" "brent" name;
      Alcotest.(check int) "iterations in payload" 2 iterations
  | _ -> Alcotest.fail "2 Brent steps cannot reach 1e-15"

let test_brent_observed_unchanged () =
  let plain = Rootfind.brent (fun x -> cos x -. x) 0.0 1.0 in
  let iters = ref 0 and last_width = ref infinity in
  let observed =
    Rootfind.brent
      ~observe:(fun ~iteration ~width ~best:_ ->
        incr iters;
        Alcotest.(check int) "iterations count up" !iters iteration;
        last_width := width)
      (fun x -> cos x -. x)
      0.0 1.0
  in
  Alcotest.(check bool) "callback fired" true (!iters > 0);
  if !last_width > 1e-10 then
    Alcotest.failf "final bracket width %g not observed" !last_width;
  (* the callback only reads values already computed: bit-identical *)
  Alcotest.(check bool) "root unchanged" true (plain = observed)

let test_eigen_observed_bit_identical () =
  let a = random_matrix 8 in
  let plain = Eigen.eigenvalues a in
  let sweeps = ref 0 and deflations = ref 0 in
  let observed =
    Eigen.eigenvalues
      ~observe:(fun p ->
        match p.Qr_eig.event with
        | Qr_eig.Sweep -> incr sweeps
        | Qr_eig.Deflate -> incr deflations)
      a
  in
  Alcotest.(check bool) "sweeps observed" true (!sweeps > 0);
  Alcotest.(check bool) "deflations observed" true (!deflations > 0);
  Alcotest.(check int)
    "same count" (Array.length plain) (Array.length observed);
  Array.iteri
    (fun i z ->
      (* exact equality, not approximate: observation must not perturb
         a single floating-point operation *)
      if Cx.re z <> Cx.re observed.(i) || Cx.im z <> Cx.im observed.(i) then
        Alcotest.failf "eigenvalue %d differs under observation" i)
    plain

let test_qr_exhaustion_payload () =
  let a = random_matrix 8 in
  match Eigen.eigenvalues ~max_iter:1 a with
  | exception Qr_eig.No_convergence { dim; block; iterations } ->
      Alcotest.(check int) "dim" 8 dim;
      Alcotest.(check int) "iterations" 1 iterations;
      Alcotest.(check bool) "stuck block plausible" true
        (block >= 1 && block <= 8)
  | _ -> Alcotest.fail "one sweep cannot triangularize an 8x8 matrix"

(* ---- qcheck properties ---- *)

let small_dim = QCheck2.Gen.int_range 1 8

let gen_matrix =
  QCheck2.Gen.(
    small_dim >>= fun n ->
    array_size (return (n * n)) (float_range (-1.0) 1.0) >|= fun data ->
    Matrix.init n n (fun i j -> data.((i * n) + j)))

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu solve residual small" ~count:60 gen_matrix
    (fun a ->
      let n = a.Matrix.rows in
      let b = Vec.init n (fun i -> float_of_int (i + 1)) in
      match Lu.solve_system a b with
      | Error `Singular -> true (* degenerate draw *)
      | Ok x ->
          let scale = Float.max 1.0 (Matrix.norm_inf a) in
          (* condition number can be large for random matrices; accept a
             generous residual bound *)
          Vec.norm_inf (Vec.sub (Matrix.mul_vec a x) b) /. scale < 1e-6)

let prop_eigen_count =
  QCheck2.Test.make ~name:"eigenvalue count = dimension" ~count:40 gen_matrix
    (fun a -> Array.length (Eigen.eigenvalues a) = a.Matrix.rows)

let prop_transpose_mul =
  QCheck2.Test.make ~name:"(AB)ᵀ = BᵀAᵀ" ~count:60 gen_matrix (fun a ->
      let b = Matrix.identity a.Matrix.rows in
      let b = Matrix.add b a in
      Matrix.approx_equal ~tol:1e-9
        (Matrix.transpose (Matrix.mul a b))
        (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "urs_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "2x2 product" `Quick test_matrix_mul;
          Alcotest.test_case "identity product" `Quick test_matrix_identity_mul;
          Alcotest.test_case "transpose involution" `Quick test_matrix_transpose;
          Alcotest.test_case "matrix-vector products" `Quick test_matrix_vec_mul;
          Alcotest.test_case "row sums and trace" `Quick test_matrix_row_sums;
          Alcotest.test_case "blit" `Quick test_matrix_blit;
        ] );
      ( "lu",
        [
          Alcotest.test_case "2x2 solve" `Quick test_lu_solve;
          Alcotest.test_case "random residuals" `Quick test_lu_random_residual;
          Alcotest.test_case "transposed solve" `Quick test_lu_transposed_solve;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "determinant sign under pivoting" `Quick
            test_lu_det_permutation_sign;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "log determinant" `Quick test_lu_log_det;
          Alcotest.test_case "singular detection" `Quick test_lu_singular_detection;
        ] );
      ( "qr",
        [
          Alcotest.test_case "square solve" `Quick test_qr_square_solve;
          Alcotest.test_case "least squares line fit" `Quick test_qr_least_squares;
          Alcotest.test_case "R upper triangular" `Quick test_qr_r_triangular;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "complex pair" `Quick test_eigen_complex_pair;
          Alcotest.test_case "trace and det identities" `Quick
            test_eigen_trace_det_identity;
          Alcotest.test_case "triangular 3x3" `Quick test_eigen_known_3x3;
          Alcotest.test_case "eigenvector residuals" `Quick
            test_eigenvector_residuals;
          Alcotest.test_case "hessenberg preserves spectrum" `Quick
            test_hessenberg_preserves_eigenvalues;
          Alcotest.test_case "balancing preserves spectrum" `Quick
            test_balance_preserves_eigenvalues;
        ] );
      ( "companion",
        [
          Alcotest.test_case "scalar, no roots inside" `Quick
            test_companion_scalar_quadratic;
          Alcotest.test_case "scalar, root inside" `Quick
            test_companion_scalar_root_inside;
          Alcotest.test_case "singular Q2" `Quick test_companion_singular_q2;
          Alcotest.test_case "roots satisfy det Q = 0" `Quick
            test_companion_eigen_satisfy_det;
        ] );
      ( "complex",
        [
          Alcotest.test_case "clu solve" `Quick test_clu_solve;
          Alcotest.test_case "null vector" `Quick test_clu_null_vector;
          Alcotest.test_case "left null vector" `Quick test_clu_left_null_vector;
          Alcotest.test_case "complex determinant" `Quick test_clu_det;
          Alcotest.test_case "cvec phase normalization" `Quick
            test_cvec_normalize_phase;
        ] );
      ( "complex extras",
        [
          Alcotest.test_case "cmatrix arithmetic" `Quick test_cmatrix_arithmetic;
          Alcotest.test_case "cx helpers" `Quick test_cx_helpers;
        ] );
      ( "eigen extras",
        [
          Alcotest.test_case "Qᵀ preserves norm" `Quick
            test_qr_apply_qt_preserves_norm;
          Alcotest.test_case "symmetric spectrum real" `Quick
            test_eigen_symmetric_real_spectrum;
          Alcotest.test_case "stochastic matrix has eigenvalue 1" `Quick
            test_eigen_stochastic_has_unit_eigenvalue;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisection" `Quick test_bisect;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "brent on linear" `Quick test_brent_linear;
          Alcotest.test_case "largest root" `Quick test_largest_root;
          Alcotest.test_case "no root" `Quick test_largest_root_none;
        ] );
      ( "observation",
        [
          Alcotest.test_case "bisect exhaustion payload" `Quick
            test_bisect_exhausted;
          Alcotest.test_case "brent exhaustion payload" `Quick
            test_brent_exhausted;
          Alcotest.test_case "brent observed, root unchanged" `Quick
            test_brent_observed_unchanged;
          Alcotest.test_case "eigenvalues bit-identical observed" `Quick
            test_eigen_observed_bit_identical;
          Alcotest.test_case "qr exhaustion payload" `Quick
            test_qr_exhaustion_payload;
        ] );
      ("properties", qc [ prop_lu_roundtrip; prop_eigen_count; prop_transpose_mul ]);
    ]
