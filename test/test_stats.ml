(* Tests for the statistics substrate: histograms (the paper's empirical
   density machinery), descriptive statistics, Welford accumulation,
   Student-t quantiles and batch means. *)

open Urs_stats

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---- Histogram ---- *)

let test_histogram_counts () =
  let data = [| 0.5; 1.5; 1.6; 2.5; 2.6; 2.7 |] in
  let h = Histogram.build ~bins:3 ~range:(0.0, 3.0) data in
  Alcotest.(check (array int)) "counts" [| 1; 2; 3 |] (Histogram.counts h);
  check_float "width" 1.0 (Histogram.width h);
  Alcotest.(check int) "total" 6 (Histogram.total h)

let test_histogram_midpoints () =
  let h = Histogram.build ~bins:4 ~range:(0.0, 8.0) [| 1.0 |] in
  Alcotest.(check (array (float 1e-12)))
    "midpoints" [| 1.0; 3.0; 5.0; 7.0 |] (Histogram.midpoints h)

let test_histogram_probabilities_densities () =
  let data = [| 0.5; 0.6; 1.5; 1.6 |] in
  let h = Histogram.build ~bins:2 ~range:(0.0, 2.0) data in
  Alcotest.(check (array (float 1e-12)))
    "p_i = f_i/n" [| 0.5; 0.5 |] (Histogram.probabilities h);
  (* d_i = p_i / delta_i (paper §2) *)
  Alcotest.(check (array (float 1e-12)))
    "d_i = p_i/delta" [| 0.5; 0.5 |] (Histogram.densities h);
  (* densities integrate to 1 *)
  let total =
    Array.fold_left
      (fun acc d -> acc +. (d *. Histogram.width h))
      0.0 (Histogram.densities h)
  in
  check_float "density integral" 1.0 total

let test_histogram_ecdf_points () =
  let data = [| 0.5; 0.6; 1.5; 1.6 |] in
  let h = Histogram.build ~bins:2 ~range:(0.0, 2.0) data in
  let pts = Histogram.empirical_cdf_points h in
  check_float "F(x0)" 0.5 (snd pts.(0));
  check_float "F(x1)" 1.0 (snd pts.(1))

let test_histogram_moments () =
  (* eq. (1): M̃_k = Σ x_i^k p_i over midpoints *)
  let data = [| 0.5; 0.5; 1.5; 1.5 |] in
  let h = Histogram.build ~bins:2 ~range:(0.0, 2.0) data in
  check_float "M1" 1.0 (Histogram.moment h 1);
  check_float "M2" ((0.25 +. 2.25) /. 2.0) (Histogram.moment h 2);
  check_float "variance (eq 2)" (Histogram.moment h 2 -. 1.0) (Histogram.variance h)

let test_histogram_clamps_outliers () =
  let h = Histogram.build ~bins:2 ~range:(0.0, 2.0) [| -5.0; 10.0 |] in
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] (Histogram.counts h)

let test_histogram_exponential_recovery () =
  (* density of a fine histogram over exponential samples approximates
     the true pdf *)
  let g = Urs_prob.Rng.create 99 in
  let data = Array.init 200_000 (fun _ -> Urs_prob.Rng.exponential g 1.0) in
  let h = Histogram.build ~bins:100 ~range:(0.0, 8.0) data in
  let xs = Histogram.midpoints h and ds = Histogram.densities h in
  (* compare at a mid-range point *)
  let i = 12 in
  check_float ~tol:0.03 "density near pdf" (exp (-.xs.(i))) ds.(i)

(* ---- Empirical ---- *)

let test_empirical_mean_variance () =
  let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Empirical.mean data);
  check_float "variance" 4.571428571428571 (Empirical.variance data);
  check_float "min" 2.0 (Empirical.minimum data);
  check_float "max" 9.0 (Empirical.maximum data)

let test_empirical_moments_onepass () =
  let data = [| 1.0; 2.0; 3.0 |] in
  let ms = Empirical.moments data 3 in
  check_float "m1" 2.0 ms.(0);
  check_float "m2" (14.0 /. 3.0) ms.(1);
  check_float "m3" 12.0 ms.(2);
  check_float "matches single" (Empirical.moment data 2) ms.(1)

let test_empirical_quantile () =
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Empirical.quantile data 0.5);
  check_float "min" 1.0 (Empirical.quantile data 0.0);
  check_float "max" 5.0 (Empirical.quantile data 1.0);
  check_float "interpolated" 1.4 (Empirical.quantile data 0.1)

let test_empirical_ecdf () =
  let data = [| 1.0; 2.0; 3.0 |] in
  check_float "below" 0.0 (Empirical.ecdf data 0.5);
  check_float "mid" (2.0 /. 3.0) (Empirical.ecdf data 2.5);
  check_float "above" 1.0 (Empirical.ecdf data 3.5)

(* ---- Welford ---- *)

let test_welford_matches_batch () =
  let g = Urs_prob.Rng.create 5 in
  let data = Array.init 1000 (fun _ -> Urs_prob.Rng.float g) in
  let w = Welford.create () in
  Array.iter (Welford.add w) data;
  check_float ~tol:1e-12 "mean" (Empirical.mean data) (Welford.mean w);
  check_float ~tol:1e-9 "variance" (Empirical.variance data) (Welford.variance w);
  Alcotest.(check int) "count" 1000 (Welford.count w)

let test_welford_merge () =
  let g = Urs_prob.Rng.create 6 in
  let data = Array.init 500 (fun _ -> Urs_prob.Rng.float g) in
  let a = Welford.create () and b = Welford.create () in
  Array.iteri (fun i x -> Welford.add (if i < 250 then a else b) x) data;
  let m = Welford.merge a b in
  check_float ~tol:1e-12 "merged mean" (Empirical.mean data) (Welford.mean m);
  check_float ~tol:1e-9 "merged variance" (Empirical.variance data)
    (Welford.variance m)

(* ---- Student_t ---- *)

let test_student_t_table () =
  (* classical two-sided critical values *)
  check_float ~tol:1e-3 "df=1 95%" 12.706 (Student_t.critical ~df:1 ~confidence:0.95);
  check_float ~tol:1e-3 "df=9 95%" 2.262 (Student_t.critical ~df:9 ~confidence:0.95);
  check_float ~tol:1e-3 "df=30 95%" 2.042 (Student_t.critical ~df:30 ~confidence:0.95);
  check_float ~tol:1e-3 "df=9 99%" 3.250 (Student_t.critical ~df:9 ~confidence:0.99)

let test_student_t_cdf_symmetry () =
  check_float ~tol:1e-12 "median" 0.5 (Student_t.cdf ~df:7 0.0);
  check_float ~tol:1e-10 "symmetry" 1.0
    (Student_t.cdf ~df:7 1.3 +. Student_t.cdf ~df:7 (-1.3))

let test_student_t_quantile_roundtrip () =
  let q = Student_t.quantile ~df:5 0.9 in
  check_float ~tol:1e-8 "roundtrip" 0.9 (Student_t.cdf ~df:5 q)

(* ---- Batch means ---- *)

let test_batch_means_iid () =
  let g = Urs_prob.Rng.create 7 in
  let series = Array.init 10_000 (fun _ -> 3.0 +. Urs_prob.Rng.normal g) in
  let iv = Batch_means.analyze series in
  Alcotest.(check bool) "covers true mean" true
    (abs_float (iv.Batch_means.estimate -. 3.0) <= 2.0 *. iv.Batch_means.half_width);
  Alcotest.(check int) "batches" 20 iv.Batch_means.batches

let test_batch_means_too_short () =
  Alcotest.check_raises "short series"
    (Invalid_argument "Batch_means.analyze: series too short for the batch count")
    (fun () -> ignore (Batch_means.analyze (Array.make 10 1.0)))

(* ---- Welch warm-up detection ---- *)

let test_welch_moving_average () =
  (* a constant signal is a fixed point of the smoother *)
  let flat = Welch.moving_average ~window:3 (Array.make 20 5.0) in
  Array.iter (fun v -> check_float "constant preserved" 5.0 v) flat;
  (* edge windows shrink symmetrically: position 0 is the raw value *)
  let xs = [| 0.0; 2.0; 4.0; 6.0; 8.0 |] in
  let sm = Welch.moving_average ~window:2 xs in
  check_float "edge keeps raw value" 0.0 sm.(0);
  check_float "half-width 1 at position 1" 2.0 sm.(1);
  check_float "full window in the middle" 4.0 sm.(2);
  (* nan entries are skipped, not propagated *)
  let with_gap = [| 1.0; Float.nan; 1.0; 1.0; 1.0 |] in
  let sm = Welch.moving_average ~window:1 with_gap in
  check_float "gap bridged" 1.0 sm.(2);
  Alcotest.check_raises "window must be >= 1"
    (Invalid_argument "Welch.moving_average: window must be >= 1") (fun () ->
      ignore (Welch.moving_average ~window:0 xs))

let test_welch_truncation_known_warmup () =
  (* deterministic stream with a transient of known length: an
     exponential decay on top of a constant steady state, plus a small
     deterministic wiggle so the trajectory is not trivially flat *)
  let n = 200 in
  let steady = 10.0 in
  let xs =
    Array.init n (fun i ->
        let t = float_of_int i in
        steady
        +. (8.0 *. exp (-.t /. 15.0))
        +. (0.05 *. sin (t /. 3.0)))
  in
  (match Welch.truncation_index ~window:5 ~tolerance:0.02 xs with
  | None -> Alcotest.fail "should settle"
  | Some k ->
      (* 8*exp(-t/15) falls below 2% of 10 around t = 15*ln(40) ~ 55 *)
      if k < 30 || k > 80 then
        Alcotest.failf "truncation %d outside the expected 30..80" k);
  (* no transient at all: truncation at index 0 *)
  (match Welch.truncation_index ~window:5 (Array.make n steady) with
  | Some 0 -> ()
  | other ->
      Alcotest.failf "flat stream should truncate at 0, got %s"
        (match other with None -> "None" | Some k -> string_of_int k));
  (* a drifting stream never settles *)
  (match
     Welch.truncation_index ~window:5
       (Array.init n (fun i -> float_of_int i))
   with
  | None -> ()
  | Some k -> Alcotest.failf "drift should never settle, got %d" k);
  (* all-nan input holds no information *)
  match Welch.truncation_index (Array.make 10 Float.nan) with
  | None -> ()
  | Some k -> Alcotest.failf "nan-only input should be None, got %d" k

let test_welch_tail_mean () =
  let xs = Array.init 10 float_of_int in
  (* last half of 0..9 is 5..9 *)
  check_float "default fraction" 7.0 (Welch.tail_mean xs);
  check_float "custom fraction" 8.0 (Welch.tail_mean ~fraction:0.3 xs);
  Alcotest.(check bool)
    "empty tail is nan" true
    (Float.is_nan (Welch.tail_mean (Array.make 5 Float.nan)))

(* ---- qcheck ---- *)

let prop_histogram_total =
  QCheck2.Test.make ~name:"histogram conserves observations" ~count:100
    QCheck2.Gen.(array_size (int_range 1 500) (float_range 0.0 100.0))
    (fun data ->
      let h = Histogram.build ~bins:13 data in
      Array.fold_left ( + ) 0 (Histogram.counts h) = Array.length data)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"empirical quantile monotone" ~count:100
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 100) (float_range (-50.0) 50.0))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (data, (p, q)) ->
      let lo = Float.min p q and hi = Float.max p q in
      Empirical.quantile data lo <= Empirical.quantile data hi +. 1e-9)

let prop_welford_mean_bounds =
  QCheck2.Test.make ~name:"welford mean within data range" ~count:100
    QCheck2.Gen.(array_size (int_range 1 200) (float_range (-10.0) 10.0))
    (fun data ->
      let w = Welford.create () in
      Array.iter (Welford.add w) data;
      let m = Welford.mean w in
      m >= Empirical.minimum data -. 1e-9 && m <= Empirical.maximum data +. 1e-9)

(* ---- Changepoint (CUSUM) ---- *)

(* a synthetic perf series: multiplicative lognormal noise around a
   baseline, with an optional step factor from [step_at] on — the same
   shape the detector sees from BENCH_history.jsonl (in log space) *)
let perf_series ~seed ~n ~noise ~step_at ~step =
  let rng = Urs_prob.Rng.create seed in
  let xs = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let level = if i >= step_at then step else 1.0 in
    xs.(i) <- log (0.0026 *. level *. exp (noise *. Urs_prob.Rng.normal rng))
  done;
  xs

let test_changepoint_flags_step () =
  let step_at = 20 in
  let xs = perf_series ~seed:200 ~n:30 ~noise:0.05 ~step_at ~step:2.0 in
  match Changepoint.detect xs with
  | None -> Alcotest.fail "missed an injected 2x step"
  | Some c ->
      Alcotest.(check bool) "direction up" true (c.Changepoint.direction = Changepoint.Up);
      if abs (c.Changepoint.start - step_at) > 3 then
        Alcotest.failf "start %d not within 3 of injection %d"
          c.Changepoint.start step_at;
      if c.Changepoint.detected - step_at > 3 then
        Alcotest.failf "detected %d more than 3 points after injection %d"
          c.Changepoint.detected step_at;
      (* shift is a log-ratio: exp shift should be near the 2x factor *)
      let ratio = exp c.Changepoint.shift in
      if ratio < 1.5 || ratio > 2.7 then
        Alcotest.failf "step magnitude %.2fx far from injected 2x" ratio

let test_changepoint_flags_down_step () =
  let xs = perf_series ~seed:200 ~n:30 ~noise:0.05 ~step_at:20 ~step:0.5 in
  match Changepoint.detect xs with
  | None -> Alcotest.fail "missed an injected 0.5x step"
  | Some c ->
      Alcotest.(check bool) "direction down" true
        (c.Changepoint.direction = Changepoint.Down)

let test_changepoint_quiet_on_noise () =
  (* seeded i.i.d. noise around a stable baseline: no alarm *)
  let xs = perf_series ~seed:100 ~n:40 ~noise:0.05 ~step_at:max_int ~step:1.0 in
  (match Changepoint.detect xs with
  | None -> ()
  | Some c ->
      Alcotest.failf "false alarm at %d (stat %.1f)" c.Changepoint.detected
        c.Changepoint.statistic);
  (* constant series: the scale floor keeps z finite and quiet *)
  Alcotest.(check bool) "constant series quiet" true
    (Changepoint.detect (Array.make 30 1.0) = None)

let test_changepoint_short_series () =
  (* fewer than warmup + 2 points can never flag, whatever the data *)
  let xs = [| 1.0; 1.0; 1.0; 8.0; 8.0 |] in
  Alcotest.(check bool) "short series" true (Changepoint.detect xs = None);
  Alcotest.(check bool) "empty" true (Changepoint.detect [||] = None);
  (* the same step flags once the series is long enough *)
  let long = Array.init 20 (fun i -> if i < 14 then 1.0 else 8.0) in
  Alcotest.(check bool) "long enough flags" true
    (Changepoint.detect ~warmup:4 long <> None)

let test_changepoint_skips_nonfinite () =
  let xs = Array.init 30 (fun i -> if i = 5 then nan else 1.0) in
  Alcotest.(check bool) "nan skipped, quiet" true (Changepoint.detect xs = None)

let test_changepoint_invalid_args () =
  let xs = Array.make 20 1.0 in
  Alcotest.check_raises "threshold <= 0"
    (Invalid_argument "Changepoint.detect: threshold <= 0") (fun () ->
      ignore (Changepoint.detect ~threshold:0.0 xs));
  Alcotest.check_raises "drift < 0"
    (Invalid_argument "Changepoint.detect: drift < 0") (fun () ->
      ignore (Changepoint.detect ~drift:(-0.1) xs))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "urs_stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "midpoints" `Quick test_histogram_midpoints;
          Alcotest.test_case "probabilities and densities" `Quick
            test_histogram_probabilities_densities;
          Alcotest.test_case "empirical cdf points" `Quick
            test_histogram_ecdf_points;
          Alcotest.test_case "moments (eq 1-2)" `Quick test_histogram_moments;
          Alcotest.test_case "outlier clamping" `Quick
            test_histogram_clamps_outliers;
          Alcotest.test_case "recovers exponential density" `Quick
            test_histogram_exponential_recovery;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "mean and variance" `Quick
            test_empirical_mean_variance;
          Alcotest.test_case "one-pass moments" `Quick
            test_empirical_moments_onepass;
          Alcotest.test_case "quantiles" `Quick test_empirical_quantile;
          Alcotest.test_case "ecdf" `Quick test_empirical_ecdf;
        ] );
      ( "welford",
        [
          Alcotest.test_case "matches batch formulas" `Quick
            test_welford_matches_batch;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "student_t",
        [
          Alcotest.test_case "critical value table" `Quick test_student_t_table;
          Alcotest.test_case "cdf symmetry" `Quick test_student_t_cdf_symmetry;
          Alcotest.test_case "quantile roundtrip" `Quick
            test_student_t_quantile_roundtrip;
        ] );
      ( "batch_means",
        [
          Alcotest.test_case "iid coverage" `Quick test_batch_means_iid;
          Alcotest.test_case "too-short series" `Quick test_batch_means_too_short;
        ] );
      ( "welch",
        [
          Alcotest.test_case "moving average" `Quick test_welch_moving_average;
          Alcotest.test_case "known warm-up" `Quick
            test_welch_truncation_known_warmup;
          Alcotest.test_case "tail mean" `Quick test_welch_tail_mean;
        ] );
      ( "changepoint",
        [
          Alcotest.test_case "flags 2x step within 3 points" `Quick
            test_changepoint_flags_step;
          Alcotest.test_case "flags downward step" `Quick
            test_changepoint_flags_down_step;
          Alcotest.test_case "quiet on seeded iid noise" `Quick
            test_changepoint_quiet_on_noise;
          Alcotest.test_case "short series never flag" `Quick
            test_changepoint_short_series;
          Alcotest.test_case "non-finite points skipped" `Quick
            test_changepoint_skips_nonfinite;
          Alcotest.test_case "invalid arguments" `Quick
            test_changepoint_invalid_args;
        ] );
      ( "properties",
        qc [ prop_histogram_total; prop_quantile_monotone; prop_welford_mean_bounds ] );
    ]
