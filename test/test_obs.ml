(* Tests for the observability layer: metric registry semantics
   (counters, gauges, histograms, label canonicalization, reset),
   span timing and trace trees under a deterministic clock, the
   Prometheus and JSON exporters (golden outputs), and a regression
   pinning the metrics recorded by a spectral solve of the paper's
   model. *)

module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Export = Urs_obs.Export
module Json = Urs_obs.Json

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains msg hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" msg needle hay

type hsnap = {
  counts : int array;
  count : int;
  sum : float;
  mean : float;
  stddev : float;
}

let find_histogram snap name =
  match
    List.find_opt (fun e -> e.Metrics.name = name && e.Metrics.labels = []) snap
  with
  | Some { Metrics.data = Metrics.Histogram_value h; _ } ->
      { counts = h.counts; count = h.count; sum = h.sum; mean = h.mean;
        stddev = h.stddev }
  | _ -> Alcotest.failf "missing histogram %s" name

(* ---- counters ---- *)

let test_counter_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "frobs_total" in
  check_float "starts at zero" 0.0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  check_float "accumulates" 3.5 (Metrics.counter_value c);
  (match Metrics.inc ~by:(-1.0) c with
  | () -> Alcotest.fail "negative increment should raise"
  | exception Invalid_argument _ -> ());
  check_float "unchanged after bad inc" 3.5 (Metrics.counter_value c)

let test_registration_idempotent () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "calls_total" in
  let b = Metrics.counter ~registry:r "calls_total" in
  Metrics.inc a;
  Metrics.inc b;
  (* both handles address the same underlying metric *)
  check_float "shared" 2.0 (Metrics.counter_value a);
  (* re-registering under a different kind is an error *)
  (match Metrics.gauge ~registry:r "calls_total" with
  | _ -> Alcotest.fail "kind mismatch should raise"
  | exception Invalid_argument _ -> ())

let test_label_canonicalization () =
  let r = Metrics.create () in
  let a =
    Metrics.counter ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "l_total"
  in
  let b =
    Metrics.counter ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "l_total"
  in
  Metrics.inc a;
  Metrics.inc b;
  check_float "label order irrelevant" 2.0 (Metrics.counter_value a);
  check_float "lookup by either order" 2.0
    (Option.get (Metrics.value ~registry:r ~labels:[ ("b", "2"); ("a", "1") ]
                   "l_total"))

let test_invalid_name () =
  let r = Metrics.create () in
  match Metrics.counter ~registry:r "1bad name" with
  | _ -> Alcotest.fail "invalid metric name should raise"
  | exception Invalid_argument _ -> ()

(* ---- gauges ---- *)

let test_gauge_semantics () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "temp" in
  check_float "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 5.0;
  Metrics.add g (-2.0);
  check_float "set/add" 3.0 (Metrics.gauge_value g);
  Metrics.set_max g 10.0;
  Metrics.set_max g 4.0;
  check_float "high-water mark" 10.0 (Metrics.gauge_value g)

(* ---- histograms ---- *)

let test_histogram_semantics () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[| 1.0; 2.0 |] "lat_seconds"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 9.0 ];
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "lat_seconds" in
  (* upper bounds are inclusive, Prometheus-style: 1.0 lands in le="1" *)
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1 |] v.counts;
  Alcotest.(check int) "count" 4 v.count;
  check_float "sum" 12.0 v.sum;
  check_float "mean" 3.0 v.mean;
  (* sample stddev of {0.5, 1.0, 1.5, 9.0}: sqrt(48.5/3) *)
  check_float ~tol:1e-9 "stddev" (sqrt (48.5 /. 3.0)) v.stddev

let test_histogram_bad_buckets () =
  let r = Metrics.create () in
  (match Metrics.histogram ~registry:r ~buckets:[||] "e_seconds" with
  | _ -> Alcotest.fail "empty buckets should raise"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram ~registry:r ~buckets:[| 2.0; 1.0 |] "u_seconds" with
  | _ -> Alcotest.fail "unsorted buckets should raise"
  | exception Invalid_argument _ -> ()

(* ---- reset ---- *)

let test_reset_keeps_handles () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "r_total" in
  let g = Metrics.gauge ~registry:r "r_gauge" in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "r_seconds" in
  Metrics.inc ~by:7.0 c;
  Metrics.set g 3.0;
  Metrics.observe h 0.5;
  Metrics.reset ~registry:r ();
  check_float "counter zeroed" 0.0 (Metrics.counter_value c);
  check_float "gauge zeroed" 0.0 (Metrics.gauge_value g);
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "r_seconds" in
  Alcotest.(check int) "histogram emptied" 0 v.count;
  (* stale handles keep working after reset *)
  Metrics.inc c;
  check_float "handle alive" 1.0 (Metrics.counter_value c)

let test_value_lookup () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "v_total" in
  Metrics.inc c;
  let _ = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "v_seconds" in
  Alcotest.(check (option (float 1e-12)))
    "counter" (Some 1.0)
    (Metrics.value ~registry:r "v_total");
  Alcotest.(check (option (float 1e-12)))
    "histogram is None" None
    (Metrics.value ~registry:r "v_seconds");
  Alcotest.(check (option (float 1e-12)))
    "absent is None" None
    (Metrics.value ~registry:r "nope_total")

(* ---- spans ---- *)

let with_fake_clock f =
  let t = ref 0.0 in
  Span.set_clock (fun () -> !t);
  Fun.protect
    ~finally:(fun () ->
      Span.use_default_clock ();
      Span.set_tracing false)
    (fun () -> f t)

let test_span_records_duration () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  let result =
    Span.with_ ~registry:r ~name:"outer" (fun () ->
        t := !t +. 1.0;
        Span.with_ ~registry:r ~name:"inner" (fun () ->
            t := !t +. 0.25;
            42))
  in
  Alcotest.(check int) "result threaded through" 42 result;
  let snap = Metrics.snapshot ~registry:r () in
  let outer = find_histogram snap "outer_seconds" in
  let inner = find_histogram snap "inner_seconds" in
  check_float "outer duration" 1.25 outer.sum;
  check_float "inner duration" 0.25 inner.sum;
  Alcotest.(check int) "one observation each" 1 outer.count;
  Alcotest.(check int) "one observation each" 1 inner.count

let test_span_exception_safe () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  (try
     Span.with_ ~registry:r ~name:"boom" (fun () ->
         t := !t +. 0.5;
         failwith "bang")
   with Failure _ -> ());
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "boom_seconds" in
  Alcotest.(check int) "recorded despite raise" 1 v.count;
  check_float "duration" 0.5 v.sum

let test_span_trace_tree () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  Span.set_tracing true;
  Span.with_ ~registry:r ~name:"root" (fun () ->
      t := !t +. 1.0;
      Span.with_ ~registry:r ~name:"child"
        ~labels:[ ("stage", "x") ]
        (fun () -> t := !t +. 0.5));
  let trace = Span.trace_json () in
  check_contains "root span" trace "\"name\":\"root\"";
  check_contains "nested child" trace
    "\"children\":[{\"name\":\"child\"";
  check_contains "child labels" trace "\"labels\":{\"stage\":\"x\"}";
  check_contains "nothing dropped" trace "\"dropped\":0";
  (* disabling tracing clears nothing; re-enabling starts fresh *)
  Span.set_tracing false;
  Span.set_tracing true;
  check_contains "cleared on enable" (Span.trace_json ()) "\"spans\":[]"

let test_tracing_disabled_still_measures () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  Alcotest.(check bool) "tracing off by default" false (Span.tracing_enabled ());
  Span.with_ ~registry:r ~name:"quiet" (fun () -> t := !t +. 2.0);
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "quiet_seconds" in
  check_float "metric recorded without tracing" 2.0 v.sum;
  check_contains "no trace collected" (Span.trace_json ()) "\"spans\":[]"

(* ---- JSON serializer ---- *)

let test_json_render () =
  let check msg expected v =
    Alcotest.(check string) msg expected (Json.to_string v)
  in
  check "escaping" {|"a\"b\\c\nd"|} (Json.String "a\"b\\c\nd");
  check "control chars" {|"\u0001"|} (Json.String "\001");
  check "non-finite floats are null" "null" (Json.Float nan);
  check "round-trip float" "0.1" (Json.Float 0.1);
  check "list" "[1,true,null]" (Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
  check "object" {|{"a":1,"b":[]}|}
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.List []) ])

(* ---- exporters ---- *)

let golden_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"Total frobs" "frobs_total" in
  Metrics.inc ~by:3.0 c;
  let g =
    Metrics.gauge ~registry:r ~help:"Temperature"
      ~labels:[ ("site", "lab") ]
      "temp"
  in
  Metrics.set g 1.5;
  let h =
    Metrics.histogram ~registry:r ~help:"Latency" ~buckets:[| 1.0; 2.0 |]
      "lat_seconds"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9.0 ];
  r

let test_prometheus_golden () =
  let expected =
    "# HELP frobs_total Total frobs\n\
     # TYPE frobs_total counter\n\
     frobs_total 3\n\
     # HELP lat_seconds Latency\n\
     # TYPE lat_seconds histogram\n\
     lat_seconds_bucket{le=\"1\"} 1\n\
     lat_seconds_bucket{le=\"2\"} 2\n\
     lat_seconds_bucket{le=\"+Inf\"} 3\n\
     lat_seconds_sum 11\n\
     lat_seconds_count 3\n\
     # HELP temp Temperature\n\
     # TYPE temp gauge\n\
     temp{site=\"lab\"} 1.5\n"
  in
  Alcotest.(check string) "prometheus text" expected
    (Export.prometheus (Metrics.snapshot ~registry:(golden_registry ()) ()))

let test_prometheus_label_escaping () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~registry:r ~labels:[ ("p", "a\"b\\c\nd") ] "esc_total"
  in
  Metrics.inc c;
  check_contains "escaped label value"
    (Export.prometheus (Metrics.snapshot ~registry:r ()))
    {|esc_total{p="a\"b\\c\nd"} 1|}

let test_json_golden () =
  let r = Metrics.create () in
  Metrics.inc (Metrics.counter ~registry:r "hits_total");
  Alcotest.(check string)
    "json export"
    {|{"metrics":[{"name":"hits_total","type":"counter","value":1}]}|}
    (Export.json (Metrics.snapshot ~registry:r ()));
  (* histogram buckets render cumulative, like the Prometheus text *)
  let j = Export.json (Metrics.snapshot ~registry:(golden_registry ()) ()) in
  check_contains "cumulative buckets" j
    {|"buckets":[{"le":1,"count":1},{"le":2,"count":2},{"le":"+Inf","count":3}]|};
  check_contains "welford summary" j {|"mean":3.6666666666666665|}

(* ---- regression: metrics recorded by a spectral solve ---- *)

let test_spectral_solve_metrics () =
  let m =
    Urs.Model.create ~servers:5 ~arrival_rate:3.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  let q =
    match Urs.Model.qbd m with
    | Some q -> q
    | None -> Alcotest.fail "paper model should be phase-type"
  in
  (match Urs_mmq.Spectral.solve q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "solve failed: %a" Urs_mmq.Spectral.pp_error e);
  (* N=5 servers in a 3-phase environment (2 operative + 1 repair) give
     C(5+2,2) = 21 states, hence 21 eigenvalues inside the unit disk *)
  Alcotest.(check (option (float 1e-12)))
    "eigenvalue-count gauge" (Some 21.0)
    (Metrics.value "urs_spectral_eigenvalues");
  (match Metrics.value "urs_spectral_residual" with
  | Some resid ->
      if not (resid >= 0.0 && resid < 1e-8) then
        Alcotest.failf "balance residual %g not in [0, 1e-8)" resid
  | None -> Alcotest.fail "missing urs_spectral_residual gauge");
  (match Metrics.value "urs_qr_sweeps_total" with
  | Some sweeps when sweeps > 0.0 -> ()
  | v ->
      Alcotest.failf "urs_qr_sweeps_total should be positive, got %s"
        (match v with Some x -> string_of_float x | None -> "absent"));
  match Metrics.value "urs_spectral_lu_factorizations_total" with
  | Some lu when lu > 0.0 -> ()
  | _ -> Alcotest.fail "urs_spectral_lu_factorizations_total should be positive"

let () =
  Alcotest.run "urs_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "idempotent registration" `Quick
            test_registration_idempotent;
          Alcotest.test_case "label canonicalization" `Quick
            test_label_canonicalization;
          Alcotest.test_case "invalid name" `Quick test_invalid_name;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram semantics" `Quick
            test_histogram_semantics;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "value lookup" `Quick test_value_lookup;
        ] );
      ( "spans",
        [
          Alcotest.test_case "records duration" `Quick
            test_span_records_duration;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "trace tree" `Quick test_span_trace_tree;
          Alcotest.test_case "tracing off still measures" `Quick
            test_tracing_disabled_still_measures;
        ] );
      ( "export",
        [
          Alcotest.test_case "json rendering" `Quick test_json_render;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "json golden" `Quick test_json_golden;
        ] );
      ( "integration",
        [
          Alcotest.test_case "spectral solve metrics" `Quick
            test_spectral_solve_metrics;
        ] );
    ]
