(* Tests for the observability layer: metric registry semantics
   (counters, gauges, histograms, label canonicalization, reset),
   span timing and trace trees under a deterministic clock, the
   Prometheus and JSON exporters (golden outputs), and a regression
   pinning the metrics recorded by a spectral solve of the paper's
   model. *)

module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Export = Urs_obs.Export
module Json = Urs_obs.Json

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains msg hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" msg needle hay

type hsnap = {
  counts : int array;
  count : int;
  sum : float;
  mean : float;
  stddev : float;
}

let find_histogram snap name =
  match
    List.find_opt (fun e -> e.Metrics.name = name && e.Metrics.labels = []) snap
  with
  | Some { Metrics.data = Metrics.Histogram_value h; _ } ->
      { counts = h.counts; count = h.count; sum = h.sum; mean = h.mean;
        stddev = h.stddev }
  | _ -> Alcotest.failf "missing histogram %s" name

(* ---- counters ---- *)

let test_counter_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "frobs_total" in
  check_float "starts at zero" 0.0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  check_float "accumulates" 3.5 (Metrics.counter_value c);
  (match Metrics.inc ~by:(-1.0) c with
  | () -> Alcotest.fail "negative increment should raise"
  | exception Invalid_argument _ -> ());
  check_float "unchanged after bad inc" 3.5 (Metrics.counter_value c)

let test_registration_idempotent () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "calls_total" in
  let b = Metrics.counter ~registry:r "calls_total" in
  Metrics.inc a;
  Metrics.inc b;
  (* both handles address the same underlying metric *)
  check_float "shared" 2.0 (Metrics.counter_value a);
  (* re-registering under a different kind is an error *)
  (match Metrics.gauge ~registry:r "calls_total" with
  | _ -> Alcotest.fail "kind mismatch should raise"
  | exception Invalid_argument _ -> ())

let test_label_canonicalization () =
  let r = Metrics.create () in
  let a =
    Metrics.counter ~registry:r ~labels:[ ("b", "2"); ("a", "1") ] "l_total"
  in
  let b =
    Metrics.counter ~registry:r ~labels:[ ("a", "1"); ("b", "2") ] "l_total"
  in
  Metrics.inc a;
  Metrics.inc b;
  check_float "label order irrelevant" 2.0 (Metrics.counter_value a);
  check_float "lookup by either order" 2.0
    (Option.get (Metrics.value ~registry:r ~labels:[ ("b", "2"); ("a", "1") ]
                   "l_total"))

let test_invalid_name () =
  let r = Metrics.create () in
  match Metrics.counter ~registry:r "1bad name" with
  | _ -> Alcotest.fail "invalid metric name should raise"
  | exception Invalid_argument _ -> ()

(* ---- gauges ---- *)

let test_gauge_semantics () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "temp" in
  check_float "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 5.0;
  Metrics.add g (-2.0);
  check_float "set/add" 3.0 (Metrics.gauge_value g);
  Metrics.set_max g 10.0;
  Metrics.set_max g 4.0;
  check_float "high-water mark" 10.0 (Metrics.gauge_value g)

(* ---- histograms ---- *)

let test_histogram_semantics () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[| 1.0; 2.0 |] "lat_seconds"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 9.0 ];
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "lat_seconds" in
  (* upper bounds are inclusive, Prometheus-style: 1.0 lands in le="1" *)
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1 |] v.counts;
  Alcotest.(check int) "count" 4 v.count;
  check_float "sum" 12.0 v.sum;
  check_float "mean" 3.0 v.mean;
  (* sample stddev of {0.5, 1.0, 1.5, 9.0}: sqrt(48.5/3) *)
  check_float ~tol:1e-9 "stddev" (sqrt (48.5 /. 3.0)) v.stddev

let test_histogram_bad_buckets () =
  let r = Metrics.create () in
  (match Metrics.histogram ~registry:r ~buckets:[||] "e_seconds" with
  | _ -> Alcotest.fail "empty buckets should raise"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram ~registry:r ~buckets:[| 2.0; 1.0 |] "u_seconds" with
  | _ -> Alcotest.fail "unsorted buckets should raise"
  | exception Invalid_argument _ -> ()

(* ---- reset ---- *)

let test_reset_keeps_handles () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "r_total" in
  let g = Metrics.gauge ~registry:r "r_gauge" in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "r_seconds" in
  Metrics.inc ~by:7.0 c;
  Metrics.set g 3.0;
  Metrics.observe h 0.5;
  Metrics.reset ~registry:r ();
  check_float "counter zeroed" 0.0 (Metrics.counter_value c);
  check_float "gauge zeroed" 0.0 (Metrics.gauge_value g);
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "r_seconds" in
  Alcotest.(check int) "histogram emptied" 0 v.count;
  (* stale handles keep working after reset *)
  Metrics.inc c;
  check_float "handle alive" 1.0 (Metrics.counter_value c)

let test_value_lookup () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "v_total" in
  Metrics.inc c;
  let _ = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "v_seconds" in
  Alcotest.(check (option (float 1e-12)))
    "counter" (Some 1.0)
    (Metrics.value ~registry:r "v_total");
  Alcotest.(check (option (float 1e-12)))
    "histogram is None" None
    (Metrics.value ~registry:r "v_seconds");
  Alcotest.(check (option (float 1e-12)))
    "absent is None" None
    (Metrics.value ~registry:r "nope_total")

(* ---- spans ---- *)

let with_fake_clock f =
  let t = ref 0.0 in
  Span.set_clock (fun () -> !t);
  Fun.protect
    ~finally:(fun () ->
      Span.use_default_clock ();
      Span.set_tracing false)
    (fun () -> f t)

let test_span_records_duration () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  let result =
    Span.with_ ~registry:r ~name:"outer" (fun () ->
        t := !t +. 1.0;
        Span.with_ ~registry:r ~name:"inner" (fun () ->
            t := !t +. 0.25;
            42))
  in
  Alcotest.(check int) "result threaded through" 42 result;
  let snap = Metrics.snapshot ~registry:r () in
  let outer = find_histogram snap "outer_seconds" in
  let inner = find_histogram snap "inner_seconds" in
  check_float "outer duration" 1.25 outer.sum;
  check_float "inner duration" 0.25 inner.sum;
  Alcotest.(check int) "one observation each" 1 outer.count;
  Alcotest.(check int) "one observation each" 1 inner.count

let test_span_exception_safe () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  (try
     Span.with_ ~registry:r ~name:"boom" (fun () ->
         t := !t +. 0.5;
         failwith "bang")
   with Failure _ -> ());
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "boom_seconds" in
  Alcotest.(check int) "recorded despite raise" 1 v.count;
  check_float "duration" 0.5 v.sum

let test_span_trace_tree () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  Span.set_tracing true;
  Span.with_ ~registry:r ~name:"root" (fun () ->
      t := !t +. 1.0;
      Span.with_ ~registry:r ~name:"child"
        ~labels:[ ("stage", "x") ]
        (fun () -> t := !t +. 0.5));
  let trace = Span.trace_json () in
  check_contains "root span" trace "\"name\":\"root\"";
  check_contains "nested child" trace
    "\"children\":[{\"name\":\"child\"";
  check_contains "child labels" trace "\"labels\":{\"stage\":\"x\"}";
  check_contains "nothing dropped" trace "\"dropped\":0";
  (* disabling tracing clears nothing; re-enabling starts fresh *)
  Span.set_tracing false;
  Span.set_tracing true;
  check_contains "cleared on enable" (Span.trace_json ()) "\"spans\":[]"

let test_tracing_disabled_still_measures () =
  with_fake_clock @@ fun t ->
  let r = Metrics.create () in
  Alcotest.(check bool) "tracing off by default" false (Span.tracing_enabled ());
  Span.with_ ~registry:r ~name:"quiet" (fun () -> t := !t +. 2.0);
  let v = find_histogram (Metrics.snapshot ~registry:r ()) "quiet_seconds" in
  check_float "metric recorded without tracing" 2.0 v.sum;
  check_contains "no trace collected" (Span.trace_json ()) "\"spans\":[]"

(* ---- JSON serializer ---- *)

let test_json_render () =
  let check msg expected v =
    Alcotest.(check string) msg expected (Json.to_string v)
  in
  check "escaping" {|"a\"b\\c\nd"|} (Json.String "a\"b\\c\nd");
  check "control chars" {|"\u0001"|} (Json.String "\001");
  check "non-finite floats are null" "null" (Json.Float nan);
  check "round-trip float" "0.1" (Json.Float 0.1);
  check "list" "[1,true,null]" (Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
  check "object" {|{"a":1,"b":[]}|}
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.List []) ])

(* ---- exporters ---- *)

let golden_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"Total frobs" "frobs_total" in
  Metrics.inc ~by:3.0 c;
  let g =
    Metrics.gauge ~registry:r ~help:"Temperature"
      ~labels:[ ("site", "lab") ]
      "temp"
  in
  Metrics.set g 1.5;
  let h =
    Metrics.histogram ~registry:r ~help:"Latency" ~buckets:[| 1.0; 2.0 |]
      "lat_seconds"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9.0 ];
  r

let test_prometheus_golden () =
  let expected =
    "# HELP frobs_total Total frobs\n\
     # TYPE frobs_total counter\n\
     frobs_total 3\n\
     # HELP lat_seconds Latency\n\
     # TYPE lat_seconds histogram\n\
     lat_seconds_bucket{le=\"1\"} 1\n\
     lat_seconds_bucket{le=\"2\"} 2\n\
     lat_seconds_bucket{le=\"+Inf\"} 3\n\
     lat_seconds_sum 11\n\
     lat_seconds_count 3\n\
     # HELP temp Temperature\n\
     # TYPE temp gauge\n\
     temp{site=\"lab\"} 1.5\n"
  in
  Alcotest.(check string) "prometheus text" expected
    (Export.prometheus (Metrics.snapshot ~registry:(golden_registry ()) ()))

let test_prometheus_label_escaping () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~registry:r ~labels:[ ("p", "a\"b\\c\nd") ] "esc_total"
  in
  Metrics.inc c;
  check_contains "escaped label value"
    (Export.prometheus (Metrics.snapshot ~registry:r ()))
    {|esc_total{p="a\"b\\c\nd"} 1|}

let test_json_golden () =
  let r = Metrics.create () in
  Metrics.inc (Metrics.counter ~registry:r "hits_total");
  Alcotest.(check string)
    "json export"
    {|{"metrics":[{"name":"hits_total","type":"counter","value":1}]}|}
    (Export.json (Metrics.snapshot ~registry:r ()));
  (* histogram buckets render cumulative, like the Prometheus text *)
  let j = Export.json (Metrics.snapshot ~registry:(golden_registry ()) ()) in
  check_contains "cumulative buckets" j
    {|"buckets":[{"le":1,"count":1},{"le":2,"count":2},{"le":"+Inf","count":3}]|};
  check_contains "welford summary" j {|"mean":3.6666666666666665|}

(* ---- JSON parser ---- *)

let test_json_parse_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.1;
      Json.String "a\"b\\c\nd\001";
      Json.List [ Json.Int 1; Json.Bool false; Json.Null ];
      Json.Obj
        [ ("a", Json.Int 1); ("b", Json.List [ Json.Float 2.5 ]);
          ("nested", Json.Obj [ ("x", Json.String "y") ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
          Alcotest.(check string)
            ("round-trip of " ^ s) s (Json.to_string v')
      | Error e -> Alcotest.failf "parse of %s failed: %s" s e)
    samples

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parse of %S should fail" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  match Json.of_string {|{"a":1,"b":2.5,"c":"x"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      Alcotest.(check (option (float 1e-12)))
        "int member" (Some 1.0)
        (Option.bind (Json.member "a" v) Json.to_float_opt);
      Alcotest.(check (option (float 1e-12)))
        "float member" (Some 2.5)
        (Option.bind (Json.member "b" v) Json.to_float_opt);
      Alcotest.(check (option string))
        "string member" (Some "x")
        (Option.bind (Json.member "c" v) Json.to_string_opt);
      Alcotest.(check bool)
        "absent member" true
        (Json.member "zz" v = None)

(* ---- skip_zero and the degenerate-summary guard ---- *)

let test_skip_zero () =
  let r = Metrics.create () in
  let live = Metrics.counter ~registry:r "live_total" in
  Metrics.inc live;
  let _idle = Metrics.counter ~registry:r "idle_total" in
  let _empty = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "e_seconds" in
  let _zero_gauge = Metrics.gauge ~registry:r "z_gauge" in
  let snap = Metrics.snapshot ~registry:r () in
  let full = Export.prometheus snap in
  check_contains "full keeps idle counter" full "idle_total 0";
  let trimmed = Export.prometheus ~skip_zero:true snap in
  check_contains "skip_zero keeps live series" trimmed "live_total 1";
  if contains trimmed "idle_total" then
    Alcotest.fail "skip_zero should drop zero counters";
  if contains trimmed "e_seconds" then
    Alcotest.fail "skip_zero should drop empty histograms";
  if contains trimmed "z_gauge" then
    Alcotest.fail "skip_zero should drop zero gauges";
  let j = Export.json ~skip_zero:true snap in
  check_contains "json skip_zero keeps live" j "live_total";
  if contains j "idle_total" then
    Alcotest.fail "json skip_zero should drop zero counters"

(* pin the exported JSON for degenerate Welford summaries: no
   observations, one observation, and an observed infinity must all
   yield finite (zero) mean/stddev *)
let test_degenerate_summary_json () =
  let histogram_json r =
    match
      Json.member "metrics" (Export.json_value (Metrics.snapshot ~registry:r ()))
    with
    | Some (Json.List [ entry ]) -> entry
    | _ -> Alcotest.fail "expected exactly one metric"
  in
  let r0 = Metrics.create () in
  let _ = Metrics.histogram ~registry:r0 ~buckets:[| 1.0 |] "d_seconds" in
  Alcotest.(check string)
    "count=0 pins to zeros"
    {|{"name":"d_seconds","type":"histogram","count":0,"sum":0,"mean":0,"stddev":0,"buckets":[{"le":1,"count":0},{"le":"+Inf","count":0}]}|}
    (Json.to_string (histogram_json r0));
  let r1 = Metrics.create () in
  let h1 = Metrics.histogram ~registry:r1 ~buckets:[| 1.0 |] "d_seconds" in
  Metrics.observe h1 0.5;
  Alcotest.(check string)
    "count=1 has zero stddev"
    {|{"name":"d_seconds","type":"histogram","count":1,"sum":0.5,"mean":0.5,"stddev":0,"buckets":[{"le":1,"count":1},{"le":"+Inf","count":1}]}|}
    (Json.to_string (histogram_json r1));
  let ri = Metrics.create () in
  let hi = Metrics.histogram ~registry:ri ~buckets:[| 1.0 |] "d_seconds" in
  Metrics.observe hi infinity;
  let j = Json.to_string (histogram_json ri) in
  check_contains "observed inf clamps mean" j {|"mean":0|};
  check_contains "observed inf clamps stddev" j {|"stddev":0|};
  if contains j "inf" || contains j "nan" then
    Alcotest.failf "non-finite value leaked into JSON: %s" j

(* ---- ledger ---- *)

module Ledger = Urs_obs.Ledger

let with_clean_ledger f =
  Ledger.reset ();
  Fun.protect ~finally:Ledger.reset f

let sample_record () =
  Ledger.record ~kind:"spectral.solve" ~strategy:"exact"
    ~params:[ ("servers", Json.Int 5); ("lambda", Json.Float 4.0) ]
    ~wall_seconds:0.012
    ~summary:[ ("residual", Json.Float 6.1e-16) ]
    ~gauges:[ ("urs_spectral_dominant_z", 0.8009) ]
    ()

let test_ledger_inactive_noop () =
  with_clean_ledger @@ fun () ->
  Alcotest.(check bool) "inactive by default" false (Ledger.active ());
  sample_record ();
  Alcotest.(check int) "no records buffered" 0 (List.length (Ledger.recent ()))

let test_ledger_file_roundtrip () =
  with_clean_ledger @@ fun () ->
  let path = Filename.temp_file "urs_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Ledger.open_file ~truncate:true path;
      sample_record ();
      Ledger.record ~kind:"sweep.point" ~outcome:"dropped" ~wall_seconds:0.5 ();
      Ledger.close ();
      match Ledger.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok [ a; b ] ->
          Alcotest.(check int) "seq stamps" 1 a.Ledger.seq;
          Alcotest.(check int) "seq stamps" 2 b.Ledger.seq;
          Alcotest.(check string) "kind" "spectral.solve" a.Ledger.kind;
          Alcotest.(check (option string))
            "strategy" (Some "exact") a.Ledger.strategy;
          check_float "wall" 0.012 a.Ledger.wall_seconds;
          Alcotest.(check string) "default outcome" "ok" a.Ledger.outcome;
          Alcotest.(check string) "explicit outcome" "dropped" b.Ledger.outcome;
          check_float "gauge snapshot" 0.8009
            (List.assoc "urs_spectral_dominant_z" a.Ledger.gauges);
          (* numbers without a fractional part come back as Json.Int;
             to_float_opt absorbs the difference *)
          (match Json.to_float_opt (List.assoc "lambda" a.Ledger.params) with
          | Some l -> check_float "param" 4.0 l
          | None -> Alcotest.fail "lambda param not numeric")
      | Ok rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs))

let test_ledger_memory_ring () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  sample_record ();
  sample_record ();
  sample_record ();
  let rs = Ledger.recent ~limit:2 () in
  Alcotest.(check int) "limit respected" 2 (List.length rs);
  (* oldest-first within the limit window: the two most recent *)
  Alcotest.(check (list int))
    "most recent, oldest first" [ 2; 3 ]
    (List.map (fun r -> r.Ledger.seq) rs);
  Ledger.set_memory false;
  Alcotest.(check int) "disabling clears" 0 (List.length (Ledger.recent ()))

let test_ledger_concurrent_reads () =
  (* regression: the ring is read by the HTTP thread while the solver
     thread appends; without the internal mutex a preempted Queue.push
     could tear the traversal in [recent] *)
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let appends = 2_000 in
  let writer =
    Thread.create
      (fun () ->
        for _ = 1 to appends do
          sample_record ();
          Thread.yield ()
        done)
      ()
  in
  let reads = ref 0 in
  while Thread.yield (); !reads < 500 do
    incr reads;
    let rs = Ledger.recent () in
    (* every snapshot must be internally consistent: strictly
       increasing seq, no duplicates or holes from a torn queue *)
    ignore
      (List.fold_left
         (fun prev r ->
           if r.Ledger.seq <= prev then
             Alcotest.failf "torn snapshot: seq %d after %d" r.Ledger.seq prev;
           r.Ledger.seq)
         0 rs)
  done;
  Thread.join writer;
  let rs = Ledger.recent () in
  let last = List.nth rs (List.length rs - 1) in
  Alcotest.(check int) "all appends arrived" appends last.Ledger.seq

let test_ledger_malformed_line () =
  with_clean_ledger @@ fun () ->
  let path = Filename.temp_file "urs_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Ledger.open_file ~truncate:true path;
      sample_record ();
      Ledger.close ();
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "not json\n";
      close_out oc;
      match Ledger.read_file path with
      | Ok _ -> Alcotest.fail "malformed journal should not parse"
      | Error e -> check_contains "error names the line" e ":2:")

(* ---- HTTP server ---- *)

module Http = Urs_obs.Http

let http_request ?(meth = "GET") ~port path =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let req = Printf.sprintf "%s %s HTTP/1.0\r\n\r\n" meth path in
      let _ = Unix.write_substring sock req 0 (String.length req) in
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let http_get = http_request ~meth:"GET"

let test_http_smoke () =
  let routes =
    [
      ("/ping", fun _q -> Http.respond "pong\n");
      ("/boom", fun _q -> failwith "handler exploded");
      ( "/json",
        fun _q ->
          Http.respond ~content_type:"application/json" {|{"ok":true}|} );
      ( "/echo",
        fun q ->
          Http.respond
            (String.concat ";"
               (List.map (fun (k, v) -> k ^ "=" ^ v) q)) );
    ]
  in
  let server = Http.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      if port <= 0 then Alcotest.failf "bad ephemeral port %d" port;
      let ping = http_get ~port "/ping" in
      check_contains "200 status line" ping "HTTP/1.0 200";
      check_contains "body" ping "pong";
      (* query strings are stripped before route matching and handed to
         the handler, percent-decoded *)
      check_contains "query string stripped for routing"
        (http_get ~port "/ping?x=1")
        "pong";
      check_contains "query parsed and decoded"
        (http_get ~port "/echo?a=1&b=hello%20world&flag&c=x+y")
        "a=1;b=hello world;flag=;c=x y";
      let missing = http_get ~port "/nope" in
      check_contains "404 status" missing "HTTP/1.0 404";
      check_contains "404 lists routes" missing "/ping";
      let boom = http_get ~port "/boom" in
      check_contains "handler exception becomes 500" boom "HTTP/1.0 500";
      check_contains "500 carries message" boom "handler exploded";
      let json = http_get ~port "/json" in
      check_contains "content-type honoured" json
        "Content-Type: application/json";
      (* HEAD: same headers as GET (including the GET body's length),
         empty body *)
      let head = http_request ~meth:"HEAD" ~port "/ping" in
      check_contains "HEAD gets 200" head "HTTP/1.0 200";
      check_contains "HEAD advertises GET length" head "Content-Length: 5";
      if
        let heads_end =
          String.length head >= 4
          && String.sub head (String.length head - 4) 4 = "\r\n\r\n"
        in
        not heads_end
      then Alcotest.failf "HEAD response carries a body: %S" head;
      let post = http_request ~meth:"POST" ~port "/ping" in
      check_contains "non-GET/HEAD method gets 405" post "HTTP/1.0 405";
      (* sequential requests on the single accept thread keep working *)
      check_contains "server still alive" (http_get ~port "/ping") "pong")

let test_http_metrics_route () =
  (* serve a live registry through the same route shape the CLI uses *)
  let r = Metrics.create () in
  Metrics.inc ~by:3.0 (Metrics.counter ~registry:r "served_total");
  let routes =
    [
      ( "/metrics",
        fun _q ->
          Http.respond
            (Export.prometheus (Metrics.snapshot ~registry:r ())) );
    ]
  in
  let server = Http.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let body = http_get ~port:(Http.port server) "/metrics" in
      check_contains "prometheus exposition served" body "served_total 3")

(* ---- trace contexts ---- *)

module Context = Urs_obs.Context

let with_seeded seed f =
  Context.set_seed seed;
  Fun.protect ~finally:Context.clear_seed f

let test_context_determinism () =
  let draw () =
    with_seeded 42 @@ fun () ->
    let a = Context.new_trace () in
    let b = Context.child a in
    (Context.trace_id_hex a, Context.span_id_hex a, Context.span_id_hex b)
  in
  let first = draw () and second = draw () in
  if first <> second then
    Alcotest.fail "equal seeds should give equal id sequences";
  let ta, sa, sb = first in
  Alcotest.(check int) "trace id width" 32 (String.length ta);
  Alcotest.(check int) "span id width" 16 (String.length sa);
  if sa = sb then Alcotest.fail "child must get a fresh span id";
  (* different seeds diverge *)
  Context.set_seed 43;
  let other = Context.new_trace () in
  Context.clear_seed ();
  if Context.trace_id_hex other = ta then
    Alcotest.fail "different seeds should give different traces"

let test_traceparent_golden () =
  (* the W3C spec's own example value *)
  let tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" in
  (match Context.of_traceparent tp with
  | Error e -> Alcotest.failf "spec example rejected: %s" e
  | Ok c ->
      Alcotest.(check string)
        "trace id" "0af7651916cd43dd8448eb211c80319c"
        (Context.trace_id_hex c);
      Alcotest.(check string)
        "span id" "b7ad6b7169203331" (Context.span_id_hex c);
      Alcotest.(check bool) "sampled" true c.Context.sampled;
      Alcotest.(check string) "round-trip" tp (Context.to_traceparent c));
  match Context.of_traceparent "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00" with
  | Ok c -> Alcotest.(check bool) "not sampled" false c.Context.sampled
  | Error e -> Alcotest.failf "flags 00 rejected: %s" e

let test_traceparent_rejections () =
  List.iter
    (fun (label, tp) ->
      match Context.of_traceparent tp with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be rejected: %S" label tp)
    [
      ("empty", "");
      ("too few fields", "00-abc");
      ("uppercase trace",
       "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01");
      ("short trace", "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01");
      ("short span", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01");
      ("non-hex", "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01");
      ("version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01");
      ("zero trace", "00-00000000000000000000000000000000-b7ad6b7169203331-01");
      ("zero span", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01");
      ("version 00 extra field",
       "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra");
    ];
  (* a future version may carry extra fields *)
  match
    Context.of_traceparent
      "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-future"
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "future version with extras rejected: %s" e

let traceparent_roundtrip_prop =
  QCheck2.Test.make ~name:"traceparent round-trip" ~count:200
    QCheck2.Gen.(triple (pair int64 int64) int64 bool)
    (fun ((hi, lo), span, sampled) ->
      (* all-zero ids are invalid by construction in new_trace; mirror
         that here rather than testing the invalid encodings *)
      let hi = if hi = 0L && lo = 0L then 1L else hi in
      let span = if span = 0L then 1L else span in
      let c = { Context.trace_hi = hi; trace_lo = lo; span_id = span; sampled } in
      match Context.of_traceparent (Context.to_traceparent c) with
      | Ok c' -> c = c'
      | Error _ -> false)

let test_context_ambient () =
  Alcotest.(check bool) "empty by default" true (Context.current () = None);
  let a = Context.new_trace () in
  let b = Context.child a in
  Context.with_current a (fun () ->
      (match Context.current () with
      | Some c when c = a -> ()
      | _ -> Alcotest.fail "with_current should install");
      Context.with_current b (fun () ->
          match Context.current () with
          | Some c when c = b -> ()
          | _ -> Alcotest.fail "nested install");
      (match Context.current () with
      | Some c when c = a -> ()
      | _ -> Alcotest.fail "nested exit should restore");
      (* capture/restore round-trips, including None *)
      let saved = Context.capture () in
      Context.restore None (fun () ->
          Alcotest.(check bool) "restored to None" true
            (Context.current () = None));
      Context.restore saved (fun () ->
          match Context.current () with
          | Some c when c = a -> ()
          | _ -> Alcotest.fail "restore saved"));
  Alcotest.(check bool) "clean after" true (Context.current () = None);
  (* the previous value comes back even on raise *)
  (try
     Context.with_current a (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored on raise" true (Context.current () = None)

let test_span_trace_ids () =
  let r = Metrics.create () in
  let clock = ref 0.0 in
  Span.set_clock (fun () -> !clock);
  Span.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Span.use_default_clock ();
      Span.set_tracing false;
      Span.reset_trace ())
    (fun () ->
      with_seeded 7 @@ fun () ->
      Span.with_ ~registry:r ~name:"urs_outer" (fun () ->
          Span.with_ ~registry:r ~name:"urs_inner" (fun () -> clock := 1.0));
      match Json.of_string (Span.trace_json ()) with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok j -> (
          match Json.member "spans" j with
          | Some (Json.List [ outer ]) -> (
              let str k n =
                Option.bind (Json.member k n) Json.to_string_opt
              in
              let outer_trace = str "trace_id" outer in
              let outer_span = str "span_id" outer in
              Alcotest.(check bool) "trace id present" true (outer_trace <> None);
              (* no ambient context: the root span has no parent *)
              Alcotest.(check (option string))
                "root has no parent" None (str "parent_span_id" outer);
              match Json.member "children" outer with
              | Some (Json.List [ inner ]) ->
                  Alcotest.(check (option string))
                    "same trace" outer_trace (str "trace_id" inner);
                  Alcotest.(check (option string))
                    "inner parents onto outer" outer_span
                    (str "parent_span_id" inner)
              | _ -> Alcotest.fail "inner span missing")
          | _ -> Alcotest.fail "expected one root span"))

(* ---- ledger trace stamps (urs-ledger/2) ---- *)

let test_ledger_trace_stamps () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let ctx = Context.new_trace () in
  (* explicit context *)
  Ledger.record ~context:ctx ~kind:"http.access" ~wall_seconds:0.001 ();
  (* ambient context *)
  Context.with_current ctx (fun () ->
      Ledger.record ~kind:"solver.evaluate" ~wall_seconds:0.002 ());
  (* no context at all *)
  Ledger.record ~kind:"bench.section" ~wall_seconds:0.003 ();
  match Ledger.recent () with
  | [ a; b; c ] ->
      Alcotest.(check (option string))
        "explicit trace id"
        (Some (Context.trace_id_hex ctx))
        a.Ledger.trace_id;
      Alcotest.(check (option string))
        "explicit span id"
        (Some (Context.span_id_hex ctx))
        a.Ledger.span_id;
      Alcotest.(check (option string))
        "ambient trace id"
        (Some (Context.trace_id_hex ctx))
        b.Ledger.trace_id;
      Alcotest.(check (option string)) "no context" None c.Ledger.trace_id;
      (* round-trip keeps the stamps and the v2 schema tag *)
      let j = Ledger.to_json a in
      check_contains "schema tag" (Json.to_string j) "urs-ledger/2";
      (match Ledger.of_json j with
      | Ok a' ->
          Alcotest.(check (option string))
            "stamps survive round-trip" a.Ledger.trace_id a'.Ledger.trace_id
      | Error e -> Alcotest.failf "v2 round-trip: %s" e)
  | rs -> Alcotest.failf "expected 3 records, got %d" (List.length rs)

let test_ledger_schema_compat () =
  (* v1 lines (no stamps) still parse; unknown schemas fail loudly *)
  let v1 =
    {|{"schema":"urs-ledger/1","seq":1,"time":0,"kind":"sweep.point","params":{},"wall_seconds":0.5,"outcome":"ok","summary":{},"gauges":{}}|}
  in
  (match Result.bind (Json.of_string v1) Ledger.of_json with
  | Ok r ->
      Alcotest.(check string) "v1 kind" "sweep.point" r.Ledger.kind;
      Alcotest.(check (option string)) "v1 has no stamps" None r.Ledger.trace_id
  | Error e -> Alcotest.failf "v1 line rejected: %s" e);
  let unknown =
    {|{"schema":"urs-ledger/9","seq":1,"time":0,"kind":"x","wall_seconds":0,"outcome":"ok"}|}
  in
  match Result.bind (Json.of_string unknown) Ledger.of_json with
  | Ok _ -> Alcotest.fail "unknown schema should be rejected"
  | Error e -> check_contains "error names the schema" e "urs-ledger/9"

(* ---- exporter escaping ---- *)

let test_export_escaping () =
  let r = Metrics.create () in
  Metrics.inc
    (Metrics.counter ~registry:r
       ~labels:[ ("route", "/timeline?series=\"x\\y\"\nz") ]
       ~help:"line one\nline two \\ backslash" "urs_esc_total");
  let out = Export.prometheus (Metrics.snapshot ~registry:r ()) in
  (* golden: backslash, double-quote and newline escaped in the label
     value; backslash and newline escaped in HELP text *)
  check_contains "label escaping" out
    {|urs_esc_total{route="/timeline?series=\"x\\y\"\nz"} 1|};
  check_contains "help escaping" out
    {|# HELP urs_esc_total line one\nline two \\ backslash|};
  (* the output must still be line-wise well formed: every line is a
     comment or a sample, no line split mid-value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' && not (contains line " ") then
        Alcotest.failf "malformed exposition line: %S" line)
    (String.split_on_char '\n' out)

(* ---- HTTP request middleware ---- *)

let test_http_middleware () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let routes = [ ("/ping", fun _q -> Http.respond "pong\n") ] in
  let server = Http.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      let requests_before route code =
        Option.value ~default:0.0
          (Metrics.value
             ~labels:[ ("route", route); ("code", code) ]
             "urs_http_requests_total")
      in
      let ok0 = requests_before "/ping" "200" in
      let missing0 = requests_before "unknown" "404" in
      let tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" in
      (match Http.request ~headers:[ ("traceparent", tp) ] ~port "/ping" with
      | Error e -> Alcotest.failf "request failed: %s" e
      | Ok (status, headers, body) ->
          Alcotest.(check int) "status" 200 status;
          Alcotest.(check string) "body" "pong\n" body;
          (match List.assoc_opt "traceparent" headers with
          | Some t ->
              (* the response continues the inbound trace with a fresh
                 span id *)
              check_contains "same trace continued" t
                "00-0af7651916cd43dd8448eb211c80319c-";
              if contains t "b7ad6b7169203331" then
                Alcotest.fail "span id should be fresh, not the parent's"
          | None -> Alcotest.fail "traceparent response header missing");
          (match List.assoc_opt "x-request-id" headers with
          | Some id -> Alcotest.(check int) "request id width" 16 (String.length id)
          | None -> Alcotest.fail "x-request-id response header missing"));
      ignore (Http.request ~port "/nope");
      check_float "route counter incremented" (ok0 +. 1.0)
        (requests_before "/ping" "200");
      check_float "unknown route collapses" (missing0 +. 1.0)
        (requests_before "unknown" "404");
      (match
         Metrics.value ~labels:[] "urs_http_in_flight_requests"
       with
      | Some v -> check_float "in-flight settles to zero" 0.0 v
      | None -> Alcotest.fail "in-flight gauge missing");
      (* one access-log record per request, stamped with the trace *)
      let access =
        List.filter
          (fun r -> r.Ledger.kind = "http.access")
          (Ledger.recent ())
      in
      Alcotest.(check int) "two access records" 2 (List.length access);
      match access with
      | [ ping; nope ] ->
          Alcotest.(check (option string))
            "inbound trace id stamped"
            (Some "0af7651916cd43dd8448eb211c80319c")
            ping.Ledger.trace_id;
          Alcotest.(check string) "error outcome" "error" nope.Ledger.outcome;
          (match List.assoc_opt "status" nope.Ledger.summary with
          | Some (Json.Int 404) -> ()
          | _ -> Alcotest.fail "status in summary")
      | _ -> assert false)

(* ---- timelines ---- *)

module Timeline = Urs_obs.Timeline
module Progress = Urs_obs.Progress

(* sample times step by 0.75 so no sample ever lands exactly on a
   power-of-two coverage boundary (0.75 * k = 2^m * capacity has no
   integer solution): boundary-exact times are reserved for a final
   [finish] at the horizon, which closes into the last bucket instead
   of merging *)
let record_sawtooth s n =
  for i = 0 to n - 1 do
    Timeline.record s ~t:(0.75 *. float_of_int i) (float_of_int (i mod 7))
  done;
  Timeline.finish s ~t:(0.75 *. float_of_int n)

let test_timeline_bounded () =
  let r = Timeline.create () in
  let s = Timeline.series ~registry:r ~capacity:8 "urs_t_signal" in
  record_sawtooth s 1000;
  let snap = Timeline.snapshot_series s in
  let points = snap.Timeline.points in
  if List.length points > 8 then
    Alcotest.failf "capacity exceeded: %d points" (List.length points);
  let covered =
    List.fold_left (fun acc p -> acc +. p.Timeline.time_cov) 0.0 points
  in
  check_float ~tol:1e-9 "whole run covered" 750.0 covered;
  List.iter
    (fun p ->
      let mean = Timeline.point_mean p in
      if not (p.Timeline.vmin <= mean && mean <= p.Timeline.vmax) then
        Alcotest.failf "bucket %d: min %g <= mean %g <= max %g violated"
          p.Timeline.index p.Timeline.vmin mean p.Timeline.vmax;
      if p.Timeline.time_cov > snap.Timeline.width +. 1e-9 then
        Alcotest.failf "bucket %d covers more than its width" p.Timeline.index)
    points

let check_snapshots_equal msg (a : Timeline.snapshot) (b : Timeline.snapshot) =
  check_float (msg ^ ": t0") a.Timeline.t0 b.Timeline.t0;
  check_float (msg ^ ": width") a.Timeline.width b.Timeline.width;
  Alcotest.(check int)
    (msg ^ ": point count")
    (List.length a.Timeline.points)
    (List.length b.Timeline.points);
  List.iter2
    (fun (p : Timeline.point) (q : Timeline.point) ->
      Alcotest.(check int) (msg ^ ": index") p.Timeline.index q.Timeline.index;
      Alcotest.(check int) (msg ^ ": count") p.Timeline.count q.Timeline.count;
      check_float ~tol:1e-9 (msg ^ ": time_cov") p.Timeline.time_cov
        q.Timeline.time_cov;
      check_float ~tol:1e-9 (msg ^ ": area") p.Timeline.area q.Timeline.area;
      check_float ~tol:1e-9 (msg ^ ": sum_v") p.Timeline.sum_v q.Timeline.sum_v;
      check_float (msg ^ ": vmin") p.Timeline.vmin q.Timeline.vmin;
      check_float (msg ^ ": vmax") p.Timeline.vmax q.Timeline.vmax)
    a.Timeline.points b.Timeline.points

let test_timeline_growth_matches_coarsen () =
  (* the recorder's pairwise width-doubling and the snapshot-level
     coarsen use the same algebra: a capacity-4 recording of a signal
     equals the capacity-8 recording coarsened by 2 *)
  let r = Timeline.create () in
  let wide = Timeline.series ~registry:r ~capacity:8 "urs_t_wide" in
  let narrow = Timeline.series ~registry:r ~capacity:4 "urs_t_narrow" in
  record_sawtooth wide 16;
  record_sawtooth narrow 16;
  let wide2 = Timeline.coarsen ~factor:2 (Timeline.snapshot_series wide) in
  let narrow_snap = Timeline.snapshot_series narrow in
  check_snapshots_equal "doubling = coarsen" narrow_snap
    { wide2 with Timeline.s_name = narrow_snap.Timeline.s_name }

let test_timeline_coarsen_idempotent () =
  let r = Timeline.create () in
  let s = Timeline.series ~registry:r ~capacity:64 "urs_t_coarse" in
  record_sawtooth s 64;
  let snap = Timeline.snapshot_series s in
  let a = Timeline.coarsen ~factor:3 (Timeline.coarsen ~factor:2 snap) in
  let b = Timeline.coarsen ~factor:6 snap in
  check_snapshots_equal "coarsen composes" a b;
  check_snapshots_equal "factor 1 is the identity" snap
    (Timeline.coarsen ~factor:1 snap);
  Alcotest.check_raises "factor must be >= 1"
    (Invalid_argument "Timeline.coarsen: factor must be >= 1") (fun () ->
      ignore (Timeline.coarsen ~factor:0 snap))

let test_timeline_horizon_layout () =
  let r = Timeline.create () in
  let s =
    Timeline.series ~registry:r ~capacity:10 ~horizon:100.0 "urs_t_horizon"
  in
  Timeline.record s ~t:0.0 1.0;
  Timeline.record s ~t:50.0 3.0;
  Timeline.finish s ~t:100.0;
  let snap = Timeline.snapshot_series s in
  (* a run no longer than the horizon never merges: width stays fixed,
     including the boundary-exact final sample *)
  check_float "width = horizon / capacity" 10.0 snap.Timeline.width;
  let means = Timeline.mean_array snap in
  Alcotest.(check int) "dense grid to last bucket" 10 (Array.length means);
  check_float "held value integrated" 1.0 means.(0);
  check_float "level change lands mid-grid" 3.0 means.(7);
  (* clearing preserves the horizon-derived layout for the next rep *)
  Timeline.clear s;
  Timeline.record s ~t:0.0 2.0;
  Timeline.finish s ~t:100.0;
  check_float "width survives clear" 10.0
    (Timeline.snapshot_series s).Timeline.width

let test_timeline_pool_determinism () =
  (* the /timeline contents must not depend on --jobs: same seed, same
     buckets, whatever the pool width *)
  let cfg =
    {
      Urs_sim.Server_farm.servers = 3;
      lambda = 2.0;
      mu = 1.0;
      operative = Urs_prob.Distribution.exponential ~rate:0.1;
      inoperative = Urs_prob.Distribution.exponential ~rate:1.0;
      repair_crews = None;
    }
  in
  let run pool registry =
    ignore
      (Urs_sim.Replicate.run ?pool ~seed:5 ~replications:4 ~duration:500.0
         ~timeline_registry:registry cfg)
  in
  let r_seq = Timeline.create () in
  run None r_seq;
  let pool = Urs_exec.Pool.create ~name:"tl-test" ~domains:4 () in
  let r_par = Timeline.create () in
  Fun.protect
    ~finally:(fun () -> Urs_exec.Pool.shutdown pool)
    (fun () -> run (Some pool) r_par);
  let seq = Timeline.snapshot ~registry:r_seq () in
  let par = Timeline.snapshot ~registry:r_par () in
  Alcotest.(check int)
    "series count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Timeline.snapshot) (b : Timeline.snapshot) ->
      Alcotest.(check string) "name" a.Timeline.s_name b.Timeline.s_name;
      Alcotest.(check (list (pair string string)))
        "labels" a.Timeline.s_labels b.Timeline.s_labels;
      (* meta carries the owning domain id and may legitimately differ *)
      check_snapshots_equal a.Timeline.s_name a b)
    seq par;
  if seq = [] then Alcotest.fail "expected recorded timelines"

(* ---- progress ---- *)

let with_fake_clock f =
  let t = ref 0.0 in
  Span.set_clock (fun () -> !t);
  Fun.protect ~finally:Span.use_default_clock (fun () -> f t)

let test_progress_rate_and_eta () =
  with_fake_clock @@ fun clock ->
  Progress.reset ();
  Progress.start ~total:10 "batch";
  clock := 4.0;
  Progress.tick ~by:2 "batch";
  (match Progress.snapshot () with
  | [ st ] ->
      Alcotest.(check string) "name" "batch" st.Progress.p_name;
      Alcotest.(check (option int)) "total" (Some 10) st.Progress.p_total;
      Alcotest.(check int) "completed" 2 st.Progress.p_completed;
      check_float "elapsed" 4.0 st.Progress.p_elapsed_s;
      check_float "rate" 0.5 st.Progress.p_rate;
      (match st.Progress.p_eta_s with
      | Some eta -> check_float "eta = remaining / rate" 16.0 eta
      | None -> Alcotest.fail "eta should be known");
      Alcotest.(check bool) "not finished" false st.Progress.p_finished
  | l -> Alcotest.failf "expected one task, got %d" (List.length l));
  Progress.finish "batch";
  clock := 100.0;
  (match Progress.snapshot () with
  | [ st ] ->
      Alcotest.(check bool) "finished" true st.Progress.p_finished;
      check_float "clock frozen at finish" 4.0 st.Progress.p_elapsed_s
  | _ -> Alcotest.fail "task should remain listed");
  (* ticking an unknown task must not create one *)
  Progress.tick "never-started";
  Alcotest.(check int) "no ghost tasks" 1 (List.length (Progress.snapshot ()));
  let json = Json.to_string (Progress.to_json ()) in
  check_contains "json lists the task" json {|"task":"batch"|};
  check_contains "json marks finished" json {|"finished":true|};
  Progress.reset ();
  Alcotest.(check int) "reset clears" 0 (List.length (Progress.snapshot ()))

(* ---- perfetto export ---- *)

let test_perfetto_export () =
  with_fake_clock @@ fun clock ->
  let r = Metrics.create () in
  Span.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_tracing false;
      Span.reset_trace ())
    (fun () ->
      Span.with_ ~registry:r ~name:"urs_outer" (fun () ->
          clock := 1.0;
          Span.with_ ~registry:r ~labels:[ ("k", "v") ] ~name:"urs_inner"
            (fun () -> clock := 2.0);
          clock := 3.0);
      let trace = Span.trace_perfetto () in
      match Json.of_string trace with
      | Error e -> Alcotest.failf "perfetto output does not parse: %s" e
      | Ok j -> (
          match Json.member "traceEvents" j with
          | Some (Json.List (outer :: inner :: _)) ->
              let str k o = Option.bind (Json.member k o) Json.to_string_opt in
              let num k o = Option.bind (Json.member k o) Json.to_float_opt in
              Alcotest.(check (option string))
                "outer name" (Some "urs_outer") (str "name" outer);
              Alcotest.(check (option string))
                "complete event" (Some "X") (str "ph" outer);
              check_float "outer ts (us)" 0.0
                (Option.get (num "ts" outer));
              check_float "outer dur (us)" 3e6
                (Option.get (num "dur" outer));
              check_float "inner ts (us)" 1e6 (Option.get (num "ts" inner));
              check_float "inner dur (us)" 1e6 (Option.get (num "dur" inner));
              check_float "tid is the domain id" 0.0
                (Option.get (num "tid" inner));
              (match Json.member "args" inner with
              | Some (Json.Obj kvs) -> (
                  (match List.assoc_opt "k" kvs with
                  | Some (Json.String "v") -> ()
                  | _ -> Alcotest.fail "labels should become args");
                  (* args also carry the correlation ids: the inner
                     span's parent is the outer span *)
                  let arg_str key =
                    match List.assoc_opt key kvs with
                    | Some (Json.String s) -> Some s
                    | _ -> None
                  in
                  (match arg_str "trace_id" with
                  | Some t -> Alcotest.(check int) "trace id width" 32 (String.length t)
                  | None -> Alcotest.fail "args should carry trace_id");
                  (match (arg_str "parent_span_id", Json.member "args" outer) with
                  | Some p, Some (Json.Obj outer_kvs) ->
                      (match List.assoc_opt "span_id" outer_kvs with
                      | Some (Json.String outer_span) ->
                          Alcotest.(check string)
                            "inner parents onto outer" outer_span p
                      | _ -> Alcotest.fail "outer args should carry span_id")
                  | _ -> Alcotest.fail "inner args should carry parent_span_id"))
              | _ -> Alcotest.fail "labels should become args")
          | _ -> Alcotest.fail "traceEvents should hold both spans"))

(* ---- build info ---- *)

let test_build_info () =
  Fun.protect ~finally:Export.clear_build_info (fun () ->
      Alcotest.(check string)
        "absent until set" "" (Export.prometheus []);
      Export.set_build_info ~version:"9.9.9" ();
      let prom = Export.prometheus [] in
      check_contains "prometheus gauge" prom "# TYPE urs_build_info gauge";
      check_contains "version label" prom
        (Printf.sprintf "urs_build_info{version=\"9.9.9\",ocaml=\"%s\"} 1"
           Sys.ocaml_version);
      let json = Export.json [] in
      check_contains "json entry" json {|"name":"urs_build_info"|};
      check_contains "json version" json {|"version":"9.9.9"|});
  Alcotest.(check string)
    "cleared again" "" (Export.prometheus [])

(* ---- stats histogram exposition ---- *)

let test_stats_histogram_golden () =
  let h =
    Urs_stats.Histogram.build ~bins:3 ~range:(0.0, 3.0)
      [| 0.5; 1.5; 1.5; 2.5 |]
  in
  let got =
    Export.stats_histogram ~help:"test histogram" ~name:"urs_test_hist" h
  in
  let expected =
    "# HELP urs_test_hist test histogram\n\
     # TYPE urs_test_hist histogram\n\
     urs_test_hist_bucket{le=\"1\"} 1\n\
     urs_test_hist_bucket{le=\"2\"} 3\n\
     urs_test_hist_bucket{le=\"3\"} 4\n\
     urs_test_hist_bucket{le=\"+Inf\"} 4\n\
     urs_test_hist_sum 6\n\
     urs_test_hist_count 4\n"
  in
  Alcotest.(check string) "golden exposition" expected got;
  let labelled =
    Export.stats_histogram
      ~labels:[ ("side", "operative") ]
      ~name:"urs_test_hist" h
  in
  check_contains "labels merge with le" labelled
    "urs_test_hist_bucket{side=\"operative\",le=\"1\"} 1";
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Export.stats_histogram: invalid name \"bad name\"")
    (fun () -> ignore (Export.stats_histogram ~name:"bad name" h))

(* ---- query helpers ---- *)

let test_query_helpers () =
  let q = [ ("a", "1"); ("b", "x"); ("a", "2") ] in
  Alcotest.(check (option string)) "first wins" (Some "1") (Http.query_get q "a");
  Alcotest.(check (option string)) "missing" None (Http.query_get q "z");
  Alcotest.(check (option int)) "int" (Some 1) (Http.query_int q "a");
  Alcotest.(check (option int)) "non-numeric" None (Http.query_int q "b");
  (* strict positive-int validation: absent defaults, junk errors *)
  let q = [ ("n", "3"); ("zero", "0"); ("neg", "-2"); ("junk", "abc") ] in
  (match Http.query_pos_int q "n" ~default:100 with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "present positive should parse");
  (match Http.query_pos_int q "missing" ~default:100 with
  | Ok 100 -> ()
  | _ -> Alcotest.fail "absent should take the default");
  List.iter
    (fun key ->
      match Http.query_pos_int q key ~default:100 with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "%s should be rejected, got %d" key v)
    [ "zero"; "neg"; "junk" ]

(* ---- runtime probes ---- *)

module Runtime = Urs_obs.Runtime

let test_runtime_measure () =
  let r, d =
    Runtime.measure (fun () ->
        Array.length (Sys.opaque_identity (Array.make 100_000 0.0)))
  in
  Alcotest.(check int) "result threaded" 100_000 r;
  (* a 100k-element float array costs at least that many words,
     wherever the allocator put it *)
  if d.Runtime.d_minor_words +. d.Runtime.d_major_words < 100_000.0 then
    Alcotest.failf "allocation not observed: minor %g major %g"
      d.Runtime.d_minor_words d.Runtime.d_major_words;
  if d.Runtime.heap_words_after <= 0 then
    Alcotest.fail "heap_words_after should be positive";
  if d.Runtime.top_heap_words_after < d.Runtime.heap_words_after then
    Alcotest.fail "top heap below current heap"

let test_runtime_probe () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let r = Metrics.create () in
  let x, d =
    Runtime.probe ~registry:r ~label:"test.region" (fun () ->
        List.length (Sys.opaque_identity (List.init 10_000 Float.of_int)))
  in
  Alcotest.(check int) "result threaded" 10_000 x;
  (match Metrics.value ~registry:r "urs_runtime_minor_words_total" with
  | Some v -> check_float ~tol:1e-6 "counter = delta" d.Runtime.d_minor_words v
  | None -> Alcotest.fail "missing urs_runtime_minor_words_total");
  (match Metrics.value ~registry:r "urs_runtime_top_heap_words" with
  | Some v when v > 0.0 -> ()
  | _ -> Alcotest.fail "missing urs_runtime_top_heap_words gauge");
  match Ledger.recent () with
  | [ rc ] ->
      Alcotest.(check string) "kind" "runtime" rc.Ledger.kind;
      Alcotest.(check string) "outcome" "ok" rc.Ledger.outcome;
      (match List.assoc_opt "label" rc.Ledger.params with
      | Some (Json.String "test.region") -> ()
      | _ -> Alcotest.fail "label param missing");
      (match
         Option.bind
           (List.assoc_opt "minor_words" rc.Ledger.summary)
           Json.to_float_opt
       with
      | Some mw -> check_float ~tol:1e-6 "summary delta" d.Runtime.d_minor_words mw
      | None -> Alcotest.fail "minor_words summary missing")
  | rs -> Alcotest.failf "expected 1 ledger record, got %d" (List.length rs)

let test_runtime_probe_exception () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let r = Metrics.create () in
  (match Runtime.probe ~registry:r ~label:"boom" (fun () -> failwith "bang") with
  | _ -> Alcotest.fail "probe should re-raise"
  | exception Failure msg -> Alcotest.(check string) "message kept" "bang" msg);
  match Ledger.recent () with
  | [ rc ] ->
      Alcotest.(check string) "kind" "runtime" rc.Ledger.kind;
      Alcotest.(check string) "error outcome" "error" rc.Ledger.outcome
  | rs -> Alcotest.failf "expected 1 ledger record, got %d" (List.length rs)

let test_runtime_profiling_switch () =
  Alcotest.(check bool) "off by default" false (Runtime.profiling_enabled ());
  Runtime.set_profiling true;
  Alcotest.(check bool) "armed" true (Runtime.profiling_enabled ());
  Alcotest.(check bool)
    "same switch as Span" true
    (Span.gc_profiling_enabled ());
  Runtime.set_profiling false;
  Alcotest.(check bool) "disarmed" false (Runtime.profiling_enabled ())

let test_runtime_events_killswitch () =
  (* with the kill-switch set, the whole consumer degrades to a no-op *)
  Unix.putenv "URS_NO_RUNTIME_EVENTS" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "URS_NO_RUNTIME_EVENTS" "")
    (fun () ->
      Alcotest.(check bool) "start refused" false (Runtime.start_events ());
      Alcotest.(check bool) "not running" false (Runtime.events_running ());
      (* stop without start is a harmless no-op *)
      Runtime.stop_events ();
      Alcotest.(check int) "no slices" 0 (List.length (Runtime.gc_slices ())))

let test_runtime_events_capture () =
  (* run one full start -> GC activity -> stop cycle and check the
     consumer turned phase pairs into slices on the Span clock *)
  Unix.putenv "URS_NO_RUNTIME_EVENTS" "";
  Runtime.clear_events ();
  let started = Runtime.start_events () in
  if not started then
    Alcotest.fail "runtime should support Runtime_events on OCaml >= 5.1";
  Alcotest.(check bool) "running" true (Runtime.events_running ());
  Alcotest.(check bool)
    "second start refused while running" false (Runtime.start_events ());
  (* allocate through the minor heap and force a full major so the ring
     sees both collectors *)
  let junk = ref [] in
  for i = 0 to 50_000 do
    junk := (i, float_of_int i) :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  Gc.full_major ();
  Thread.delay 0.05;
  Runtime.stop_events ();
  Alcotest.(check bool) "stopped" false (Runtime.events_running ());
  let slices = Runtime.gc_slices () in
  if slices = [] then Alcotest.fail "no GC slices captured";
  List.iter
    (fun s ->
      if s.Runtime.duration_s < 0.0 then
        Alcotest.failf "negative slice duration for %s" s.Runtime.phase;
      if not (Float.is_finite s.Runtime.start_s) then
        Alcotest.failf "non-finite slice start for %s" s.Runtime.phase)
    slices;
  (* every slice and counter sample renders as a well-formed Chrome
     trace event *)
  List.iter
    (fun evt ->
      (match Option.bind (Json.member "ph" evt) Json.to_string_opt with
      | Some ("X" | "C") -> ()
      | _ -> Alcotest.fail "perfetto event must be ph=X or ph=C");
      match Option.bind (Json.member "ts" evt) Json.to_float_opt with
      | Some ts when Float.is_finite ts -> ()
      | _ -> Alcotest.fail "perfetto event needs a finite ts")
    (Runtime.perfetto_events ());
  (* the pause histogram saw at least one phase *)
  let saw_pause =
    List.exists
      (fun e ->
        e.Metrics.name = "urs_runtime_gc_events_total"
        &&
        match e.Metrics.data with
        | Metrics.Counter_value v -> v > 0.0
        | _ -> false)
      (Metrics.snapshot ())
  in
  if not saw_pause then Alcotest.fail "urs_runtime_gc_events_total never moved";
  let status = Json.to_string (Runtime.status_json ()) in
  check_contains "status reports stopped" status {|"events_running":false|};
  check_contains "status carries version" status {|"ocaml_version"|};
  Runtime.clear_events ();
  Alcotest.(check int) "clear drops slices" 0
    (List.length (Runtime.gc_slices ()));
  (* the ring-buffer file is unlinked as soon as the cursor maps it, so
     even a killed process leaves no <pid>.events litter in the CWD *)
  let ring =
    Filename.concat (Sys.getcwd ())
      (string_of_int (Unix.getpid ()) ^ ".events")
  in
  Alcotest.(check bool) "ring file unlinked" false (Sys.file_exists ring)

let test_runtime_events_restart () =
  (* stop_events keeps the cursor (the unlinked ring cannot be reopened),
     so a second capture cycle in the same process must still work *)
  Unix.putenv "URS_NO_RUNTIME_EVENTS" "";
  Runtime.clear_events ();
  if not (Runtime.start_events ()) then
    Alcotest.fail "first restart-cycle start refused";
  Runtime.stop_events ();
  Runtime.clear_events ();
  if not (Runtime.start_events ()) then
    Alcotest.fail "second start after stop refused";
  Alcotest.(check bool) "running again" true (Runtime.events_running ());
  let junk = ref [] in
  for i = 0 to 50_000 do
    junk := float_of_int i :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  ignore (Sys.opaque_identity !junk);
  Gc.full_major ();
  Thread.delay 0.05;
  Runtime.stop_events ();
  Alcotest.(check bool) "stopped again" false (Runtime.events_running ());
  if Runtime.gc_slices () = [] then
    Alcotest.fail "no GC slices captured after restart";
  Runtime.clear_events ()

(* ---- span GC profiling and extra-event merge ---- *)

let test_span_gc_profiling () =
  let r = Metrics.create () in
  Span.set_tracing true;
  Span.set_gc_profiling true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_gc_profiling false;
      Span.set_tracing false;
      Span.reset_trace ())
    (fun () ->
      Span.with_ ~registry:r ~name:"urs_alloc_span" (fun () ->
          ignore (Sys.opaque_identity (List.init 10_000 Float.of_int)));
      let t = Span.trace_json () in
      check_contains "minor words attached" t {|"gc_minor_words":|};
      check_contains "major words attached" t {|"gc_major_words":|};
      (* profiling off again: fresh spans carry no gc fields *)
      Span.set_gc_profiling false;
      Span.set_tracing false;
      Span.set_tracing true;
      Span.with_ ~registry:r ~name:"urs_quiet_span" (fun () -> ());
      let t' = Span.trace_json () in
      if contains t' "gc_minor_words" then
        Alcotest.fail "gc fields leaked into unprofiled span")

let test_perfetto_extra_merge () =
  with_fake_clock @@ fun clock ->
  let r = Metrics.create () in
  Span.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_tracing false;
      Span.reset_trace ())
    (fun () ->
      Span.with_ ~registry:r ~name:"urs_span" (fun () -> clock := 1.0);
      let extra =
        [
          Json.Obj
            [
              ("name", Json.String "gc:test_counter");
              ("cat", Json.String "gc");
              ("ph", Json.String "C");
              ("ts", Json.Float 0.0);
              ("pid", Json.Int 1);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("value", Json.Float 42.0) ]);
            ];
        ]
      in
      let trace = Span.trace_perfetto ~extra () in
      match Json.of_string trace with
      | Error e -> Alcotest.failf "merged trace does not parse: %s" e
      | Ok j -> (
          match Json.member "traceEvents" j with
          | Some (Json.List evs) ->
              Alcotest.(check int) "span + extra" 2 (List.length evs);
              let last = List.nth evs 1 in
              Alcotest.(check (option string))
                "extra appended last" (Some "gc:test_counter")
                (Option.bind (Json.member "name" last) Json.to_string_opt)
          | _ -> Alcotest.fail "traceEvents missing"))

(* ---- exporter emits each header family once ---- *)

let count_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let test_prometheus_type_once () =
  let r = Metrics.create () in
  Metrics.inc (Metrics.counter ~registry:r ~labels:[ ("k", "a") ] "dup_total");
  Metrics.inc (Metrics.counter ~registry:r ~labels:[ ("k", "b") ] "dup_total");
  Metrics.set (Metrics.gauge ~registry:r "dup_gauge") 1.0;
  let snap = Metrics.snapshot ~registry:r () in
  (* regression: concatenated snapshots interleave families, which an
     adjacency-based header check double-emitted *)
  let out = Export.prometheus (snap @ snap) in
  Alcotest.(check int)
    "counter TYPE once" 1
    (count_sub out "# TYPE dup_total counter");
  Alcotest.(check int)
    "gauge TYPE once" 1
    (count_sub out "# TYPE dup_gauge gauge");
  (* the samples themselves still all render *)
  Alcotest.(check int) "samples kept" 2 (count_sub out "dup_total{k=\"a\"} 1")

(* ---- perf history ---- *)

module Perf = Urs_obs.Perf

let perf_stat ?(seconds = 0.01) ?(minor = 1e5) () =
  {
    Perf.seconds;
    minor_words = minor;
    promoted_words = 1e3;
    major_words = 2e4;
  }

let perf_entry ?(time = 1000.0) ?(spectral = 0.01) () =
  {
    Perf.time;
    git_rev = "abc1234";
    ocaml = "5.1.1";
    jobs = 1;
    sections = [ ("n5", 1.5) ];
    solvers =
      [
        ("spectral", perf_stat ~seconds:spectral ());
        ("geometric", perf_stat ~seconds:1e-4 ~minor:1e3 ());
      ];
  }

let test_perf_json_roundtrip () =
  let e = perf_entry () in
  (match Perf.entry_of_json (Perf.entry_to_json e) with
  | Error err -> Alcotest.failf "round-trip failed: %s" err
  | Ok e' ->
      check_float "time" e.Perf.time e'.Perf.time;
      Alcotest.(check string) "rev" "abc1234" e'.Perf.git_rev;
      Alcotest.(check int) "jobs" 1 e'.Perf.jobs;
      check_float "section" 1.5 (List.assoc "n5" e'.Perf.sections);
      let s = List.assoc "spectral" e'.Perf.solvers in
      check_float "seconds" 0.01 s.Perf.seconds;
      check_float "minor words" 1e5 s.Perf.minor_words);
  (* a bumped schema tag must be rejected, unknown extra fields ignored *)
  (match
     Perf.entry_of_json (Json.Obj [ ("schema", Json.String "urs-perf/99") ])
   with
  | Ok _ -> Alcotest.fail "unknown schema should be rejected"
  | Error e -> check_contains "names the schema" e "urs-perf/99");
  match Perf.entry_to_json (perf_entry ()) with
  | Json.Obj fields -> (
      match
        Perf.entry_of_json (Json.Obj (("future_field", Json.Int 9) :: fields))
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "extra field should be ignored: %s" e)
  | _ -> Alcotest.fail "entry_to_json should be an object"

let test_perf_append_read () =
  let path = Filename.temp_file "urs_perf" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Perf.append path (perf_entry ~time:1.0 ());
      Perf.append path (perf_entry ~time:2.0 ~spectral:0.02 ());
      (match Perf.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok [ a; b ] ->
          check_float "first entry" 1.0 a.Perf.time;
          check_float "second entry" 2.0 b.Perf.time
      | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
      (* append never truncates *)
      Perf.append path (perf_entry ~time:3.0 ());
      (match Perf.read_file path with
      | Ok es -> Alcotest.(check int) "third appended" 3 (List.length es)
      | Error e -> Alcotest.failf "re-read: %s" e);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"schema\":\"nope\"}\n";
      close_out oc;
      match Perf.read_file path with
      | Ok _ -> Alcotest.fail "malformed history should not parse"
      | Error e -> check_contains "error names the line" e ":4:")

let test_perf_analyze_breach () =
  let history =
    [ perf_entry ~time:1.0 ~spectral:0.01 ();
      perf_entry ~time:2.0 ~spectral:0.025 () ]
  in
  let r = Perf.analyze history in
  Alcotest.(check int) "entries" 2 r.Perf.entries;
  Alcotest.(check (list string)) "spectral breaches" [ "spectral" ]
    r.Perf.breaches;
  let spectral =
    List.find (fun t -> t.Perf.solver = "spectral") r.Perf.trends
  in
  check_float "best is the minimum" 0.01 spectral.Perf.best_seconds;
  check_float "latest" 0.025 spectral.Perf.latest_seconds;
  check_float "ratio" 2.5 spectral.Perf.ratio;
  Alcotest.(check bool) "gated" true spectral.Perf.gated;
  Alcotest.(check bool) "breach" true spectral.Perf.breach;
  (* ungated solvers never breach, whatever their ratio *)
  let geometric =
    List.find (fun t -> t.Perf.solver = "geometric") r.Perf.trends
  in
  Alcotest.(check bool) "geometric not gated" false geometric.Perf.gated;
  Alcotest.(check bool) "geometric no breach" false geometric.Perf.breach;
  (* a looser gate clears it *)
  let loose = Perf.analyze ~max_ratio:3.0 history in
  Alcotest.(check (list string)) "no breach at 3x" [] loose.Perf.breaches;
  (* a single entry is its own best: ratio 1, no breach *)
  let single = Perf.analyze [ perf_entry () ] in
  Alcotest.(check (list string)) "single entry" [] single.Perf.breaches

let test_perf_renderings () =
  let r =
    Perf.analyze
      [ perf_entry ~time:1.0 ~spectral:0.01 ();
        perf_entry ~time:2.0 ~spectral:0.025 () ]
  in
  let table = Perf.render_table r in
  check_contains "table header" table "solver";
  check_contains "table trend" table "spectral";
  check_contains "table flags breach" table "BREACH";
  check_contains "table sections" table "n5";
  check_contains "table summary line" table "perf report: 2 entries";
  let md = Perf.render_markdown r in
  check_contains "markdown table" md "| spectral |";
  check_contains "markdown breach" md "**BREACH**";
  (match Json.of_string (Perf.render_json r) with
  | Error e -> Alcotest.failf "report json does not parse: %s" e
  | Ok j ->
      (match Option.bind (Json.member "schema" j) Json.to_string_opt with
      | Some "urs-report/1" -> ()
      | _ -> Alcotest.fail "report schema tag missing");
      (match Json.member "breaches" j with
      | Some (Json.List [ Json.String "spectral" ]) -> ()
      | _ -> Alcotest.fail "json breaches should list spectral"));
  let data = Perf.render_data r in
  check_contains "gnuplot block header" data "# solver: spectral";
  check_contains "gnuplot columns" data "# run time seconds minor_words";
  check_contains "gnuplot row" data "0 1 0.01 100000";
  (* two solvers -> two index blocks separated by a double blank line *)
  Alcotest.(check int) "block separator" 1 (count_sub data "\n\n\n")

let test_perf_ledger_digest () =
  let mk kind wall =
    {
      Ledger.seq = 0;
      time = 0.0;
      kind;
      strategy = None;
      params = [];
      wall_seconds = wall;
      outcome = "ok";
      summary = [];
      gauges = [];
      trace_id = None;
      span_id = None;
    }
  in
  let digest =
    Perf.ledger_digest [ mk "b.kind" 2.0; mk "a.kind" 1.0; mk "a.kind" 0.5 ]
  in
  (match digest with
  | [ ("a.kind", 2, wa); ("b.kind", 1, wb) ] ->
      check_float "a wall" 1.5 wa;
      check_float "b wall" 2.0 wb
  | _ -> Alcotest.failf "unexpected digest shape (%d rows)" (List.length digest));
  let rendered = Perf.render_ledger_digest digest in
  check_contains "digest lists kinds" rendered "a.kind";
  check_contains "digest header" rendered "by kind"

(* ---- convergence recorder ---- *)

module Conv = Urs_obs.Convergence

let test_conv_recorder_basics () =
  Conv.reset ();
  let r = Conv.create ~capacity:4 ~max_iter:10 ~solver:"t" ~label:"basics" () in
  for i = 1 to 6 do
    Conv.observe r ~iteration:i
      ~residual:(1.0 /. float_of_int i)
      ~active:(7 - i) ()
  done;
  let tr = Conv.finish r in
  Alcotest.(check int) "iterations" 6 tr.Conv.iterations;
  Alcotest.(check int) "ring bounded" 4 (Array.length tr.Conv.samples);
  Alcotest.(check int) "dropped" 2 tr.Conv.dropped;
  Alcotest.(check int) "finite residuals" 6 tr.Conv.residual_count;
  (* summary figures survive samples falling out of the ring *)
  check_float "first residual kept" 1.0 tr.Conv.residual_first;
  check_float "last residual" (1.0 /. 6.0) tr.Conv.residual_last;
  check_float "min residual" (1.0 /. 6.0) tr.Conv.residual_min;
  Alcotest.(check int)
    "window starts at oldest kept" 3 tr.Conv.samples.(0).Conv.iteration;
  Alcotest.(check (option int)) "cap" (Some 10) tr.Conv.max_iter;
  Alcotest.(check bool) "converged default" true tr.Conv.converged

let test_conv_finish_idempotent () =
  Conv.reset ();
  let r = Conv.create ~solver:"t" ~label:"seal" () in
  Conv.observe r ~iteration:1 ~residual:0.5 ();
  let a = Conv.finish ~converged:false r in
  let b = Conv.finish ~converged:true r in
  Alcotest.(check int) "same trace" a.Conv.seq b.Conv.seq;
  Alcotest.(check bool) "first verdict wins" false b.Conv.converged;
  Alcotest.(check int) "ring holds one entry" 1 (List.length (Conv.recent ()))

let test_conv_with_recording () =
  Conv.reset ();
  Alcotest.(check bool) "off by default" false (Conv.recording ());
  let finished_outside = Conv.create ~solver:"t" ~label:"outside" () in
  let (), traces =
    Conv.with_recording (fun () ->
        Alcotest.(check bool) "on inside" true (Conv.recording ());
        let r = Conv.create ~solver:"t" ~label:"inside" () in
        Conv.observe r ~iteration:1 ~residual:0.1 ();
        ignore (Conv.finish r))
  in
  Alcotest.(check bool) "restored off" false (Conv.recording ());
  Alcotest.(check int) "one trace inside window" 1 (List.length traces);
  Alcotest.(check string)
    "the inside trace" "inside" (List.hd traces).Conv.label;
  (* a recorder created before but finished after the window does not
     land in the window's trace list *)
  ignore (Conv.finish finished_outside);
  let (), later = Conv.with_recording (fun () -> ()) in
  Alcotest.(check int) "empty window" 0 (List.length later)

let test_conv_ring_bound () =
  Conv.reset ();
  for i = 1 to 70 do
    let r = Conv.create ~solver:"t" ~label:(string_of_int i) () in
    Conv.observe r ~iteration:1 ~residual:1.0 ();
    ignore (Conv.finish r)
  done;
  let all = Conv.recent () in
  Alcotest.(check int) "global ring capped" 64 (List.length all);
  Alcotest.(check string)
    "newest last" "70"
    (List.nth all (List.length all - 1)).Conv.label;
  Alcotest.(check int)
    "limit keeps newest" 5
    (List.length (Conv.recent ~limit:5 ()));
  Alcotest.(check string)
    "limited slice ends at newest" "70"
    (List.nth (Conv.recent ~limit:5 ()) 4).Conv.label;
  Conv.reset ();
  Alcotest.(check int) "reset clears" 0 (List.length (Conv.recent ()))

let test_conv_export_shapes () =
  Conv.reset ();
  let r = Conv.create ~max_iter:9 ~solver:"qr" ~label:"export" () in
  Conv.observe r ~iteration:1 ~residual:0.25 ~shift:0.5 ~active:3 ();
  Conv.observe r ~iteration:2 ~active:2 ~deflation:true ();
  ignore (Conv.finish r);
  let j = Json.to_string (Conv.to_json ()) in
  check_contains "top-level traces" j "\"traces\":";
  check_contains "solver tagged" j "\"solver\":\"qr\"";
  check_contains "samples present" j "\"samples\":";
  check_contains "cap exported" j "\"max_iter\":9";
  let evs = Conv.perfetto_events () in
  Alcotest.(check bool) "counter events emitted" true (evs <> []);
  List.iter
    (fun ev ->
      let s = Json.to_string ev in
      check_contains "counter phase" s "\"ph\":\"C\"";
      check_contains "conv track name" s "\"name\":\"conv:qr:";
      check_contains "remaining arg" s "\"remaining\":")
    evs;
  (* the residual arg is dropped for samples that carried none *)
  let with_residual =
    List.filter (fun ev -> contains (Json.to_string ev) "\"residual\":") evs
  in
  Alcotest.(check int) "one sample had a residual" 1 (List.length with_residual)

let test_conv_metrics_and_ledger () =
  Conv.reset ();
  Urs_obs.Ledger.set_memory true;
  let r = Conv.create ~solver:"mg_r" ~label:"wired" () in
  Conv.observe r ~iteration:1 ~residual:0.5 ();
  Conv.observe r ~iteration:2 ~residual:0.25 ();
  ignore (Conv.finish r);
  (match
     Metrics.value ~labels:[ ("solver", "mg_r") ] "urs_convergence_iterations"
   with
  | Some v -> check_float "iterations gauge" 2.0 v
  | None -> Alcotest.fail "missing urs_convergence_iterations gauge");
  (match
     List.find_opt
       (fun (rec_ : Urs_obs.Ledger.record) ->
         rec_.Urs_obs.Ledger.kind = "convergence")
       (Urs_obs.Ledger.recent ())
   with
  | Some rec_ ->
      Alcotest.(check string) "outcome" "ok" rec_.Urs_obs.Ledger.outcome
  | None -> Alcotest.fail "no convergence ledger record");
  Urs_obs.Ledger.set_memory false;
  Conv.reset ()

let test_conv_pp_not_converged () =
  Conv.reset ();
  let r = Conv.create ~max_iter:3 ~solver:"bisect" ~label:"stall" () in
  for i = 1 to 3 do
    Conv.observe r ~iteration:i ~residual:1.0 ()
  done;
  let tr = Conv.finish ~converged:false r in
  let s = Format.asprintf "%a" Conv.pp_trace tr in
  check_contains "flags the stall" s "NOT CONVERGED";
  check_contains "names the solver" s "bisect";
  Conv.reset ()

(* ---- regression: metrics recorded by a spectral solve ---- *)

let test_spectral_solve_metrics () =
  let m =
    Urs.Model.create ~servers:5 ~arrival_rate:3.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  let q =
    match Urs.Model.qbd m with
    | Some q -> q
    | None -> Alcotest.fail "paper model should be phase-type"
  in
  (match Urs_mmq.Spectral.solve q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "solve failed: %a" Urs_mmq.Spectral.pp_error e);
  (* the last-solve gauges are labelled by strategy since the geometric
     and matrix-geometric solvers publish the same families *)
  let exact = [ ("strategy", "exact") ] in
  (* N=5 servers in a 3-phase environment (2 operative + 1 repair) give
     C(5+2,2) = 21 states, hence 21 eigenvalues inside the unit disk *)
  Alcotest.(check (option (float 1e-12)))
    "eigenvalue-count gauge" (Some 21.0)
    (Metrics.value ~labels:exact "urs_spectral_eigenvalues");
  (match Metrics.value ~labels:exact "urs_spectral_residual" with
  | Some resid ->
      if not (resid >= 0.0 && resid < 1e-8) then
        Alcotest.failf "balance residual %g not in [0, 1e-8)" resid
  | None -> Alcotest.fail "missing urs_spectral_residual gauge");
  (match Metrics.value "urs_qr_sweeps_total" with
  | Some sweeps when sweeps > 0.0 -> ()
  | v ->
      Alcotest.failf "urs_qr_sweeps_total should be positive, got %s"
        (match v with Some x -> string_of_float x | None -> "absent"));
  match Metrics.value "urs_spectral_lu_factorizations_total" with
  | Some lu when lu > 0.0 -> ()
  | _ -> Alcotest.fail "urs_spectral_lu_factorizations_total should be positive"

(* ---- histogram quantile interpolation ---- *)

let check_nan msg v =
  if not (Float.is_nan v) then Alcotest.failf "%s: expected nan, got %g" msg v

let test_quantile_boundary () =
  (* 10 observations per bucket: ranks landing exactly on a cumulative
     boundary return the bucket bound itself, no interpolation error *)
  let bounds = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = [| 10; 10; 10; 10; 0 |] in
  let q v = Metrics.histogram_quantile ~bounds ~counts v in
  check_float "q=0.25 exact" 1.0 (q 0.25);
  check_float "q=0.5 exact" 2.0 (q 0.5);
  check_float "q=0.75 exact" 3.0 (q 0.75);
  check_float "q=1 is the last finite bound" 4.0 (q 1.0);
  check_float "mid-bucket rank interpolates linearly" 1.5 (q 0.375);
  check_float "first bucket interpolates from zero" 0.4 (q 0.1);
  (* a rank in the +Inf bucket has no upper edge to aim at *)
  check_float "+Inf rank clamps to highest finite bound" 4.0
    (Metrics.histogram_quantile ~bounds ~counts:[| 0; 0; 0; 0; 5 |] 0.5)

let test_quantile_nan_cases () =
  let bounds = [| 1.0; 2.0 |] in
  let q counts v = Metrics.histogram_quantile ~bounds ~counts v in
  check_nan "empty histogram" (q [| 0; 0; 0 |] 0.5);
  check_nan "q above 1" (q [| 1; 1; 1 |] 1.5);
  check_nan "negative q" (q [| 1; 1; 1 |] (-0.1));
  check_nan "nan q" (q [| 1; 1; 1 |] nan);
  check_nan "mismatched arrays" (q [| 1; 1 |] 0.5)

(* interpolated quantiles vs the exact empirical ones: off by at most
   the width of the bucket the true quantile falls in (the mli's
   contract), on an exponential and a bimodal latency population *)
let check_quantile_vs_empirical ~label samples =
  let bounds = Metrics.default_latency_buckets in
  let nb = Array.length bounds in
  let counts = Array.make (nb + 1) 0 in
  Array.iter
    (fun v ->
      let i = ref 0 in
      while !i < nb && v > bounds.(!i) do
        incr i
      done;
      counts.(!i) <- counts.(!i) + 1)
    samples;
  List.iter
    (fun q ->
      let hq = Metrics.histogram_quantile ~bounds ~counts q in
      let eq = Urs_stats.Empirical.quantile samples q in
      let bi = ref 0 in
      while !bi < nb && eq > bounds.(!bi) do
        incr bi
      done;
      let lo = if !bi = 0 then 0.0 else bounds.(min !bi nb - 1) in
      let hi = bounds.(min !bi (nb - 1)) in
      let width = Float.max (hi -. lo) 1e-12 in
      if Float.is_nan hq || abs_float (hq -. eq) > width +. 1e-9 then
        Alcotest.failf
          "%s q=%g: histogram %.6g vs empirical %.6g exceeds bucket width %.6g"
          label q hq eq width)
    [ 0.5; 0.9; 0.99 ]

let test_quantile_vs_empirical () =
  let rng = Urs_prob.Rng.create 7 in
  let exponential =
    Array.init 20_000 (fun _ -> Urs_prob.Rng.exponential rng 1.0)
  in
  check_quantile_vs_empirical ~label:"exponential" exponential;
  (* bimodal: µs-scale health checks mixed with second-scale solves *)
  let bimodal =
    Array.init 20_000 (fun i ->
        if i land 1 = 0 then Urs_prob.Rng.exponential rng 2000.0
        else Urs_prob.Rng.exponential rng 2.0)
  in
  check_quantile_vs_empirical ~label:"bimodal" bimodal

(* ---- standard routes: /metrics content type and formats ---- *)

module Routes = Urs_obs.Routes

let test_metrics_route_content_type () =
  Metrics.reset ();
  let h =
    Metrics.histogram ~buckets:Metrics.default_latency_buckets
      ~labels:[ ("route", "/x") ]
      "rt_seconds"
  in
  Metrics.observe h 0.003;
  let handler = List.assoc "/metrics" Routes.standard in
  let resp = handler [] in
  Alcotest.(check string)
    "prometheus text exposition content type" "text/plain; version=0.0.4"
    resp.Http.content_type;
  Alcotest.(check string)
    "exported constant matches" Routes.metrics_content_type
    resp.Http.content_type;
  Alcotest.(check int) "status" 200 resp.Http.status;
  check_contains "histogram family present" resp.Http.body "rt_seconds_bucket";
  check_contains "synthesized quantile family" resp.Http.body
    {|rt_seconds_quantile{quantile="0.99",route="/x"}|};
  let json = handler [ ("format", "json") ] in
  Alcotest.(check string)
    "json content type" "application/json" json.Http.content_type;
  check_contains "json carries quantiles" json.Http.body {|"quantiles"|};
  let bad = handler [ ("format", "xml") ] in
  Alcotest.(check int) "unknown format is a 400" 400 bad.Http.status

(* ---- client timeout: a silent server must not hang the caller ---- *)

let test_http_client_timeout () =
  (* a listening socket that never accepts: the TCP handshake succeeds
     (backlog), but no byte ever comes back *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen sock 1;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "unexpected socket address"
      in
      let t0 = Unix.gettimeofday () in
      match Http.request ~timeout_s:0.4 ~port "/healthz" with
      | Ok _ -> Alcotest.fail "silent server produced a response"
      | Error _ ->
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed > 3.0 then
            Alcotest.failf "timeout took %.1fs (want ~0.4s)" elapsed)

(* ---- POST body vetting ---- *)

let http_send ?(close_write = false) ~port raw =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let _ = Unix.write_substring sock raw 0 (String.length raw) in
      if close_write then Unix.shutdown sock Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let test_http_post_vetting () =
  let post_routes =
    [ ("/echo", fun _q ~body -> Http.respond ~content_type:"application/json" body) ]
  in
  let routes = [ ("/ping", fun _q -> Http.respond "pong\n") ] in
  let server = Http.start ~port:0 ~max_body_bytes:64 ~routes ~post_routes () in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      let post ?(content_type = "application/json") ?length body =
        let length =
          match length with
          | Some l -> l
          | None -> string_of_int (String.length body)
        in
        http_send ~port
          (Printf.sprintf
             "POST /echo HTTP/1.0\r\nContent-Type: %s\r\nContent-Length: \
              %s\r\n\r\n%s"
             content_type length body)
      in
      check_contains "well-formed POST succeeds"
        (post {|{"ok":true}|})
        "HTTP/1.0 200";
      check_contains "body echoed" (post {|{"ok":true}|}) {|{"ok":true}|};
      check_contains "non-JSON content type is 415"
        (post ~content_type:"text/plain" "hello")
        "HTTP/1.0 415";
      check_contains "missing Content-Length is 411"
        (http_send ~port
           "POST /echo HTTP/1.0\r\nContent-Type: application/json\r\n\r\n{}")
        "HTTP/1.0 411";
      check_contains "non-numeric Content-Length is 400"
        (post ~length:"banana" "{}")
        "HTTP/1.0 400";
      check_contains "oversized declared body is 413"
        (post ~length:"100000" "{}")
        "HTTP/1.0 413";
      check_contains "truncated body is 400"
        (http_send ~port ~close_write:true
           "POST /echo HTTP/1.0\r\nContent-Type: application/json\r\n\
            Content-Length: 10\r\n\r\n{}")
        "HTTP/1.0 400";
      check_contains "GET against a POST route is 405"
        (http_send ~port "GET /echo HTTP/1.0\r\n\r\n")
        "HTTP/1.0 405";
      check_contains "POST against a GET route is 405"
        (post {|{}|} |> fun _ ->
         http_send ~port
           "POST /ping HTTP/1.0\r\nContent-Type: application/json\r\n\
            Content-Length: 2\r\n\r\n{}")
        "HTTP/1.0 405";
      check_contains "server still alive" (http_get ~port "/ping") "pong")

(* ---- SLO engine ---- *)

module Slo = Urs_obs.Slo

let test_slo_parse () =
  let ok spec = Slo.parse_objective_exn spec in
  let o = ok "p99 < 50ms" in
  Alcotest.(check string) "self-naming" "p99 < 50ms" o.Slo.name;
  check_float "latency budget is 1-q" 0.01 o.Slo.budget;
  (match o.Slo.sli with
  | Slo.Latency { metric; q; threshold_s } ->
      Alcotest.(check string) "default metric" Slo.default_latency_metric metric;
      check_float "q" 0.99 q;
      check_float "threshold in seconds" 0.05 threshold_s
  | _ -> Alcotest.fail "expected a latency SLI");
  let o = ok "api: p99.9(my_seconds) < 2s" in
  Alcotest.(check string) "explicit name" "api" o.Slo.name;
  (match o.Slo.sli with
  | Slo.Latency { metric; q; threshold_s } ->
      Alcotest.(check string) "metric override" "my_seconds" metric;
      check_float "fractional quantile" 0.999 q;
      check_float "seconds suffix" 2.0 threshold_s
  | _ -> Alcotest.fail "expected a latency SLI");
  (match (ok "p50 < 250us").Slo.sli with
  | Slo.Latency { threshold_s; _ } ->
      check_float "us suffix wins over s" 2.5e-4 threshold_s
  | _ -> Alcotest.fail "expected a latency SLI");
  let o = ok "error_rate < 0.1%" in
  check_float "percent budget" 0.001 o.Slo.budget;
  (match o.Slo.sli with
  | Slo.Error_rate { metric } ->
      Alcotest.(check string) "default metric" Slo.default_error_metric metric
  | _ -> Alcotest.fail "expected an error-rate SLI");
  let o = ok "err: error_rate(my_total) < 0.02" in
  check_float "bare fraction budget" 0.02 o.Slo.budget;
  (match o.Slo.sli with
  | Slo.Error_rate { metric } ->
      Alcotest.(check string) "metric override" "my_total" metric
  | _ -> Alcotest.fail "expected an error-rate SLI");
  List.iter
    (fun spec ->
      match Slo.parse_objective spec with
      | Ok _ -> Alcotest.failf "%S should not parse" spec
      | Error _ -> ())
    [
      "garbage";
      "p99 < 50";
      "p0 < 1s";
      "p100 < 1s";
      "error_rate < 150%";
      "error_rate < 0";
      "p99(bad name) < 1s";
      "p99 < -3ms";
    ]

let slo_error_counter registry code =
  Metrics.counter ~registry
    ~labels:[ ("code", code); ("route", "/x") ]
    "urs_http_requests_total"

let test_slo_burn_and_breach () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let registry = Metrics.create () in
  let now = ref 0.0 in
  let obj = Slo.parse_objective_exn "error_rate < 1%" in
  let slo = Slo.create ~clock:(fun () -> !now) ~registry [ obj ] in
  let emit ~bad ~good =
    Metrics.inc ~by:(float_of_int good) (slo_error_counter registry "200");
    if bad > 0 then
      Metrics.inc ~by:(float_of_int bad) (slo_error_counter registry "500")
  in
  (* an hour of clean traffic *)
  for _ = 1 to 61 do
    now := !now +. 60.0;
    emit ~bad:0 ~good:1000;
    Slo.tick slo
  done;
  (match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "healthy run not breached" false ev.Slo.breached;
      check_float "current error rate zero" 0.0 ev.Slo.current;
      List.iter
        (fun (w : Slo.window_eval) ->
          check_float ("zero burn in " ^ w.Slo.window) 0.0 w.Slo.burn_rate)
        ev.Slo.windows
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs));
  (* one bad minute: the fast window alarms, the slow window holds, so
     the multi-window rule does not page *)
  now := !now +. 60.0;
  emit ~bad:200 ~good:800;
  (match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "brief blip not breached" false ev.Slo.breached;
      let burn label =
        (List.find (fun (w : Slo.window_eval) -> w.Slo.window = label)
           ev.Slo.windows)
          .Slo.burn_rate
      in
      if burn "5m" <= 1.0 then
        Alcotest.failf "fast window should burn > 1, got %g" (burn "5m");
      if burn "1h" > 1.0 then
        Alcotest.failf "slow window should hold, got %g" (burn "1h")
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs));
  (* sustained 10%% errors: every window burns, the objective breaches *)
  for _ = 1 to 10 do
    now := !now +. 60.0;
    emit ~bad:100 ~good:900;
    Slo.tick slo
  done;
  (match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "sustained failure breaches" true ev.Slo.breached;
      Alcotest.(check bool) "any_breached agrees" true (Slo.any_breached [ ev ])
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs));
  (* burn-rate and breached gauges landed on the engine's registry *)
  (match
     Metrics.value ~registry
       ~labels:[ ("objective", obj.Slo.name); ("window", "5m") ]
       "urs_slo_burn_rate"
   with
  | Some v when v > 1.0 -> ()
  | Some v -> Alcotest.failf "burn-rate gauge %g should exceed 1" v
  | None -> Alcotest.fail "urs_slo_burn_rate gauge missing");
  (match
     Metrics.value ~registry
       ~labels:[ ("objective", obj.Slo.name) ]
       "urs_slo_breached"
   with
  | Some v -> check_float "breached gauge set" 1.0 v
  | None -> Alcotest.fail "urs_slo_breached gauge missing");
  (* ... and every evaluation journaled one slo record per objective *)
  let slo_records =
    List.filter (fun r -> r.Ledger.kind = "slo") (Ledger.recent ())
  in
  Alcotest.(check int) "three evaluations journaled" 3
    (List.length slo_records);
  Alcotest.(check bool) "a breach outcome recorded" true
    (List.exists (fun r -> r.Ledger.outcome = "breach") slo_records)

let test_slo_latency_sli () =
  let registry = Metrics.create () in
  let now = ref 0.0 in
  let obj = Slo.parse_objective_exn "p99 < 50ms" in
  let slo = Slo.create ~clock:(fun () -> !now) ~registry [ obj ] in
  let hist =
    Metrics.histogram ~registry ~buckets:Metrics.default_latency_buckets
      ~labels:[ ("route", "/x") ]
      "urs_http_request_seconds"
  in
  let emit ~slow ~fast =
    for _ = 1 to fast do
      Metrics.observe hist 0.004
    done;
    for _ = 1 to slow do
      Metrics.observe hist 0.2
    done
  in
  for _ = 1 to 61 do
    now := !now +. 60.0;
    emit ~slow:0 ~fast:100;
    Slo.tick slo
  done;
  (match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "fast traffic holds" false ev.Slo.breached;
      if Float.is_nan ev.Slo.current || ev.Slo.current > 0.05 then
        Alcotest.failf "current p99 %g should sit below 50ms" ev.Slo.current
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs));
  (* ten minutes with 20%% of requests at 200ms against a 1%% budget *)
  for _ = 1 to 10 do
    now := !now +. 60.0;
    emit ~slow:20 ~fast:80;
    Slo.tick slo
  done;
  match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "slow tail breaches" true ev.Slo.breached;
      if not (ev.Slo.current > 0.05) then
        Alcotest.failf "current p99 %g should exceed the threshold"
          ev.Slo.current
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs)

let test_slo_young_engine () =
  (* no traffic at all: nothing burns, nothing breaches, the current
     value is honest about having no data *)
  let registry = Metrics.create () in
  let slo =
    Slo.create
      ~clock:(fun () -> 0.0)
      ~registry
      [ Slo.parse_objective_exn "p99 < 50ms" ]
  in
  match Slo.evaluate slo with
  | [ ev ] ->
      Alcotest.(check bool) "not breached" false ev.Slo.breached;
      check_nan "no data yet" ev.Slo.current;
      List.iter
        (fun (w : Slo.window_eval) ->
          check_float "no burn" 0.0 w.Slo.burn_rate)
        ev.Slo.windows;
      check_contains "json shape" (Json.to_string (Slo.to_json [ ev ]))
        {|"breached":false|}
  | evs -> Alcotest.failf "expected one eval, got %d" (List.length evs)

(* ---- ledger rotation, streaming reads and the sidecar index ---- *)

module Store = Urs_obs.Ledger_store

let with_tmp_ledger f =
  let path = Filename.temp_file "urs_rot" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (Store.index_path path
        :: List.concat_map
             (fun s -> [ s; Store.index_path s ])
             (Store.segments path)))
    (fun () -> f path)

let seqs_of_path path =
  match
    Urs_obs.Ledger.fold_path path ~init:[] ~f:(fun acc r ->
        r.Ledger.seq :: acc)
  with
  | Error e -> Alcotest.failf "fold_path: %s" e
  | Ok (rev, stats) -> (List.rev rev, stats)

let test_rotation_retention () =
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  Ledger.open_file ~truncate:true ~max_bytes:4096 ~keep:2 path;
  let total = 200 in
  for _ = 1 to total do
    sample_record ()
  done;
  Ledger.close ();
  let segs = Store.segments path in
  (* retention: at most keep rotated segments plus the live file *)
  if List.length segs > 3 then
    Alcotest.failf "%d segments survived retention (keep 2)"
      (List.length segs);
  List.iter
    (fun seg ->
      let size = (Unix.stat seg).Unix.st_size in
      if size > 4096 then Alcotest.failf "%s is %d bytes > max" seg size)
    segs;
  let seqs, stats = seqs_of_path path in
  Alcotest.(check int) "every surviving line parses" 0
    stats.Ledger.malformed;
  (* rotation deletes whole old segments, so the surviving seqs are a
     contiguous run ending at the last record written *)
  (match (seqs, List.rev seqs) with
  | first :: _, last :: _ ->
      Alcotest.(check int) "newest record survived" total last;
      Alcotest.(check int)
        "contiguous suffix" (last - first + 1) (List.length seqs)
  | _ -> Alcotest.fail "no records survived");
  ignore
    (List.fold_left
       (fun prev s ->
         if s <> prev + 1 then Alcotest.failf "gap: %d after %d" s prev;
         s)
       (List.hd seqs - 1) seqs)

let test_rotation_concurrent_domains () =
  (* four domains hammer one ledger across forced rotations; with keep
     high enough that nothing is deleted, not one record may be lost,
     duplicated, or torn *)
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  Ledger.open_file ~truncate:true ~max_bytes:8192 ~keep:64 path;
  let domains = 4 and per_domain = 150 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Ledger.record
                ~kind:(Printf.sprintf "load.d%d" d)
                ~params:[ ("i", Json.Int i) ]
                ~wall_seconds:0.001 ()
            done))
  in
  Array.iter Domain.join workers;
  Ledger.close ();
  let segs = Store.segments path in
  if List.length segs < 2 then
    Alcotest.failf "expected forced rotation, got %d segment(s)"
      (List.length segs);
  let seqs, stats = seqs_of_path path in
  Alcotest.(check int) "no torn lines" 0 stats.Ledger.malformed;
  let total = domains * per_domain in
  Alcotest.(check int) "no records lost" total (List.length seqs);
  let sorted = List.sort_uniq compare seqs in
  Alcotest.(check int) "no duplicate seqs" total (List.length sorted);
  Alcotest.(check int) "seq range 1..total" total (List.nth sorted (total - 1))

let test_fold_file_torn_tail () =
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  Ledger.open_file ~truncate:true path;
  for _ = 1 to 5 do
    sample_record ()
  done;
  Ledger.close ();
  (* a crashed writer's partial last line: no trailing newline, not
     even valid JSON *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc {|{"schema":"urs-ledger/2","kind":"tru|};
  close_out oc;
  (match Ledger.read_file path with
  | Ok _ -> Alcotest.fail "read_file should reject the torn tail"
  | Error _ -> ());
  match Ledger.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
  | Error e -> Alcotest.failf "fold_file: %s" e
  | Ok (n, stats) ->
      Alcotest.(check int) "complete records kept" 5 n;
      Alcotest.(check int) "torn line counted" 1 stats.Ledger.malformed

let test_flush_batching () =
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  (* flush_every 64: records sit in the buffer until the batch fills
     or the ledger closes *)
  Ledger.open_file ~truncate:true ~flush_every:64 path;
  for _ = 1 to 3 do
    sample_record ()
  done;
  let count () =
    match Ledger.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
    | Ok (n, _) -> n
    | Error _ -> 0
  in
  Alcotest.(check int) "buffered, nothing visible yet" 0 (count ());
  Ledger.close ();
  Alcotest.(check int) "close flushes the batch" 3 (count ());
  (* the default flush_every 1 makes every record immediately visible *)
  Ledger.open_file ~truncate:true path;
  sample_record ();
  Alcotest.(check int) "flushed per record" 1 (count ());
  Ledger.close ()

let test_index_sidecar_seek () =
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  Ledger.open_file ~truncate:true path;
  (* 300 of kind a then 300 of kind b: with 256-record blocks, block 0
     is pure a, block 1 mixed, block 2 (88 records) pure b *)
  for _ = 1 to 300 do
    Ledger.record ~kind:"a" ~wall_seconds:0.001 ()
  done;
  for _ = 1 to 300 do
    Ledger.record ~kind:"b" ~wall_seconds:0.001 ()
  done;
  Ledger.close ();
  let blocks = Store.read_index path in
  Alcotest.(check int) "three blocks" 3 (List.length blocks);
  Alcotest.(check int) "blocks cover every record" 600
    (List.fold_left (fun acc b -> acc + b.Store.count) 0 blocks);
  ignore
    (List.fold_left
       (fun prev b ->
         if b.Store.start_off < prev then Alcotest.fail "blocks overlap";
         b.Store.end_off)
       0 blocks);
  (* a kind-a scan proves block 2 (pure b) irrelevant and seeks it *)
  match
    Ledger.fold_file path
      ~should_skip:(fun b -> not (List.mem_assoc "a" b.Store.kinds))
      ~init:0
      ~f:(fun n r -> if r.Ledger.kind = "a" then n + 1 else n)
  with
  | Error e -> Alcotest.failf "fold_file: %s" e
  | Ok (n, stats) ->
      Alcotest.(check int) "every a record seen" 300 n;
      Alcotest.(check int) "pure-b tail block seeked" 88
        stats.Ledger.seeked_records

(* ---- query engine ---- *)

module Query = Urs_obs.Query

let qrec ~seq ~time ~kind ?route ~wall () =
  let params =
    match route with
    | None -> []
    | Some r -> [ ("route", Json.String r) ]
  in
  match
    Ledger.of_json
      (Json.Obj
         [ ("seq", Json.Int seq); ("time", Json.Float time);
           ("kind", Json.String kind); ("params", Json.Obj params);
           ("wall_seconds", Json.Float wall);
           ("outcome", Json.String "ok") ])
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "qrec: %s" e

let test_query_agg_goldens () =
  let walls = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  let records =
    List.mapi
      (fun i w -> qrec ~seq:(i + 1) ~time:(float_of_int i) ~kind:"k" ~wall:w ())
      walls
  in
  let aggs =
    [ Query.Count; Query.Rate; Query.Mean Query.Wall_seconds;
      Query.Stddev Query.Wall_seconds; Query.Min Query.Wall_seconds;
      Query.Max Query.Wall_seconds;
      Query.Quantile (0.9, Query.Wall_seconds) ]
  in
  let r = Query.run_records ~aggs records in
  match r.Query.rows with
  | [ { Query.cells = [ count; rate; mean; stddev; mn; mx; p90 ]; _ } ] ->
      (* the aggregations must agree with the library's own estimators
         to the last bit *)
      let w = Urs_stats.Welford.create () in
      List.iter (Urs_stats.Welford.add w) walls;
      check_float "count" 8.0 count;
      (* 8 records over times 0..7: (count-1)/span *)
      check_float "rate" 1.0 rate;
      check_float "mean" (Urs_stats.Welford.mean w) mean;
      check_float "stddev" (Urs_stats.Welford.std_dev w) stddev;
      check_float "min" 1.0 mn;
      check_float "max" 9.0 mx;
      check_float "p90"
        (Urs_stats.Empirical.quantile (Array.of_list walls) 0.9)
        p90
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_query_filter_group () =
  let records =
    [ qrec ~seq:1 ~time:1.0 ~kind:"http.access" ~route:"/solve" ~wall:0.1 ();
      qrec ~seq:2 ~time:2.0 ~kind:"http.access" ~route:"/solve" ~wall:0.2 ();
      qrec ~seq:3 ~time:3.0 ~kind:"http.access" ~route:"/metrics" ~wall:0.3 ();
      qrec ~seq:4 ~time:4.0 ~kind:"solve" ~wall:0.4 () ]
  in
  let filter = { Query.no_filter with kind = Some "http.access" } in
  let r =
    Query.run_records ~filter ~group_by:[ Query.Route ]
      ~aggs:[ Query.Count ] records
  in
  Alcotest.(check int) "matched" 3 r.Query.matched;
  Alcotest.(check (list (pair (list string) (list (float 1e-9)))))
    "per-route counts"
    [ ([ "/metrics" ], [ 1.0 ]); ([ "/solve" ], [ 2.0 ]) ]
    (List.map (fun row -> (row.Query.group, row.Query.cells)) r.Query.rows);
  (* time-window filter is inclusive on both ends *)
  let windowed =
    Query.run_records
      ~filter:{ Query.no_filter with since = Some 2.0; until = Some 3.0 }
      records
  in
  Alcotest.(check int) "window matched" 2 windowed.Query.matched

let test_query_parse_grammar () =
  (match Query.parse_agg "p99(wall_seconds)" with
  | Ok (Query.Quantile (p, Query.Wall_seconds)) -> check_float "p" 0.99 p
  | Ok _ -> Alcotest.fail "wrong agg"
  | Error e -> Alcotest.fail e);
  Alcotest.(check string)
    "label roundtrip" "p99(wall_seconds)"
    (Query.agg_label (Query.Quantile (0.99, Query.Wall_seconds)));
  (match Query.parse_group_by "kind,route" with
  | Ok [ Query.Kind; Query.Route ] -> ()
  | Ok _ -> Alcotest.fail "wrong keys"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Query.parse_agg bad with
      | Ok _ -> Alcotest.failf "parse_agg accepted %S" bad
      | Error _ -> ())
    [ ""; "bogus"; "p0(wall_seconds)"; "p100(x)"; "mean()"; "mean" ];
  match Query.parse_key "nope" with
  | Ok _ -> Alcotest.fail "parse_key accepted nonsense"
  | Error _ -> ()

let test_query_over_segments () =
  with_clean_ledger @@ fun () ->
  with_tmp_ledger @@ fun path ->
  Ledger.open_file ~truncate:true ~max_bytes:2048 ~keep:32 path;
  for _ = 1 to 30 do
    Ledger.record ~kind:"solve" ~wall_seconds:0.01 ()
  done;
  Ledger.close ();
  match
    Query.run ~filter:{ Query.no_filter with kind = Some "solve" } path
  with
  | Error e -> Alcotest.failf "query: %s" e
  | Ok r ->
      Alcotest.(check bool) "spans rotated segments" true (r.Query.segments > 1);
      Alcotest.(check int) "nothing lost across rotation" 30 r.Query.matched

(* ---- tail cursor and /tail route ---- *)

let test_since_cursor_truncation () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  for _ = 1 to 5 do
    sample_record ()
  done;
  let page, cursor = Ledger.since ~limit:2 ~seq:0 () in
  Alcotest.(check (list int))
    "first page" [ 1; 2 ]
    (List.map (fun r -> r.Ledger.seq) page);
  (* truncated page: the cursor stops at the last delivered record *)
  Alcotest.(check int) "cursor resumes at page end" 2 cursor;
  let page2, cursor2 = Ledger.since ~limit:10 ~seq:cursor () in
  Alcotest.(check (list int))
    "second page" [ 3; 4; 5 ]
    (List.map (fun r -> r.Ledger.seq) page2);
  Alcotest.(check int) "exhausted cursor = counter" 5 cursor2;
  let empty, cursor3 = Ledger.since ~seq:cursor2 () in
  Alcotest.(check int) "no new records" 0 (List.length empty);
  Alcotest.(check int) "cursor stable" 5 cursor3;
  (* a kind filter that matches nothing still advances the cursor *)
  let none, c = Ledger.since ~kind:"nope" ~seq:0 () in
  Alcotest.(check int) "filtered empty" 0 (List.length none);
  Alcotest.(check int) "filter skips ahead" 5 c

let test_wait_since_timeout () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  let t0 = Unix.gettimeofday () in
  let rs, _ = Ledger.wait_since ~seq:0 ~timeout_s:0.15 () in
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "nothing arrived" 0 (List.length rs);
  if waited < 0.1 then Alcotest.failf "returned too early (%.3fs)" waited;
  (* with records already buffered it answers immediately *)
  sample_record ();
  let rs, _ = Ledger.wait_since ~seq:0 ~timeout_s:5.0 () in
  Alcotest.(check int) "immediate answer" 1 (List.length rs)

let test_tail_route () =
  with_clean_ledger @@ fun () ->
  Ledger.set_memory true;
  for _ = 1 to 3 do
    sample_record ()
  done;
  Alcotest.(check bool) "registered in standard routes" true
    (List.mem_assoc "/tail" Routes.standard);
  let resp = Routes.tail_response [ ("since_seq", "0"); ("n", "2") ] in
  Alcotest.(check int) "200" 200 resp.Http.status;
  (match Json.of_string (String.trim resp.Http.body) with
  | Error e -> Alcotest.failf "body: %s" e
  | Ok j ->
      let num k = Option.bind (Json.member k j) Json.to_float_opt in
      check_float "count" 2.0 (Option.get (num "count"));
      check_float "truncated cursor" 2.0 (Option.get (num "seq"));
      match Json.member "records" j with
      | Some (Json.List [ _; _ ]) -> ()
      | _ -> Alcotest.fail "expected 2 records");
  let bad = Routes.tail_response [ ("since_seq", "-3") ] in
  Alcotest.(check int) "negative cursor rejected" 400 bad.Http.status

(* ---- perf drift detection ---- *)

let test_perf_detect_drift () =
  let entry i factor =
    {
      Perf.time = 1000.0 +. (3600.0 *. float_of_int i);
      git_rev = Printf.sprintf "r%02d" i;
      ocaml = "5.1.0";
      jobs = 1;
      sections = [];
      solvers =
        [ ( "spectral",
            {
              Perf.seconds = 0.0026 *. factor;
              minor_words = 1.0;
              promoted_words = 0.0;
              major_words = 0.0;
            } ) ];
    }
  in
  let entries =
    List.init 24 (fun i -> entry i (if i >= 16 then 2.0 else 1.0))
  in
  (match Perf.detect_drift entries with
  | [ d ] ->
      Alcotest.(check string) "solver" "spectral" d.Perf.d_solver;
      Alcotest.(check bool) "gated" true d.Perf.d_gated;
      Alcotest.(check string) "commit the step arrived with" "r16"
        d.Perf.d_git_rev;
      check_float ~tol:0.2 "2x ratio" 2.0 d.Perf.d_ratio;
      Alcotest.(check int) "regression subset" 1
        (List.length (Perf.drift_regressions [ d ]))
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* a short tail — like the committed history — never flags *)
  let short = List.init 4 (fun i -> entry i 1.0) in
  Alcotest.(check int) "short history quiet" 0
    (List.length (Perf.detect_drift short))

let () =
  Alcotest.run "urs_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "idempotent registration" `Quick
            test_registration_idempotent;
          Alcotest.test_case "label canonicalization" `Quick
            test_label_canonicalization;
          Alcotest.test_case "invalid name" `Quick test_invalid_name;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram semantics" `Quick
            test_histogram_semantics;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "value lookup" `Quick test_value_lookup;
        ] );
      ( "spans",
        [
          Alcotest.test_case "records duration" `Quick
            test_span_records_duration;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "trace tree" `Quick test_span_trace_tree;
          Alcotest.test_case "tracing off still measures" `Quick
            test_tracing_disabled_still_measures;
        ] );
      ( "export",
        [
          Alcotest.test_case "json rendering" `Quick test_json_render;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "skip_zero" `Quick test_skip_zero;
          Alcotest.test_case "degenerate summaries" `Quick
            test_degenerate_summary_json;
          Alcotest.test_case "TYPE header once per family" `Quick
            test_prometheus_type_once;
          Alcotest.test_case "label and help escaping" `Quick
            test_export_escaping;
        ] );
      ( "json-parser",
        [
          Alcotest.test_case "round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "inactive no-op" `Quick test_ledger_inactive_noop;
          Alcotest.test_case "file round-trip" `Quick
            test_ledger_file_roundtrip;
          Alcotest.test_case "memory ring" `Quick test_ledger_memory_ring;
          Alcotest.test_case "concurrent reads" `Quick
            test_ledger_concurrent_reads;
          Alcotest.test_case "malformed line" `Quick
            test_ledger_malformed_line;
          Alcotest.test_case "trace stamps" `Quick test_ledger_trace_stamps;
          Alcotest.test_case "schema compat" `Quick test_ledger_schema_compat;
        ] );
      ( "context",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_context_determinism;
          Alcotest.test_case "traceparent golden" `Quick
            test_traceparent_golden;
          Alcotest.test_case "traceparent rejections" `Quick
            test_traceparent_rejections;
          QCheck_alcotest.to_alcotest traceparent_roundtrip_prop;
          Alcotest.test_case "ambient install/restore" `Quick
            test_context_ambient;
          Alcotest.test_case "span ids in trace" `Quick test_span_trace_ids;
        ] );
      ( "http",
        [
          Alcotest.test_case "smoke" `Quick test_http_smoke;
          Alcotest.test_case "metrics route" `Quick test_http_metrics_route;
          Alcotest.test_case "query helpers" `Quick test_query_helpers;
          Alcotest.test_case "request middleware" `Quick test_http_middleware;
          Alcotest.test_case "client timeout on silent server" `Quick
            test_http_client_timeout;
          Alcotest.test_case "post body vetting" `Quick test_http_post_vetting;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "boundary exactness" `Quick test_quantile_boundary;
          Alcotest.test_case "nan cases" `Quick test_quantile_nan_cases;
          Alcotest.test_case "vs empirical quantile" `Quick
            test_quantile_vs_empirical;
        ] );
      ( "routes",
        [
          Alcotest.test_case "metrics content type and formats" `Quick
            test_metrics_route_content_type;
        ] );
      ( "slo",
        [
          Alcotest.test_case "objective parsing" `Quick test_slo_parse;
          Alcotest.test_case "burn rate and breach" `Quick
            test_slo_burn_and_breach;
          Alcotest.test_case "latency sli" `Quick test_slo_latency_sli;
          Alcotest.test_case "young engine" `Quick test_slo_young_engine;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "bounded and ordered" `Quick test_timeline_bounded;
          Alcotest.test_case "growth matches coarsen" `Quick
            test_timeline_growth_matches_coarsen;
          Alcotest.test_case "coarsen idempotent" `Quick
            test_timeline_coarsen_idempotent;
          Alcotest.test_case "horizon layout" `Quick
            test_timeline_horizon_layout;
          Alcotest.test_case "pool determinism" `Quick
            test_timeline_pool_determinism;
        ] );
      ( "progress",
        [
          Alcotest.test_case "rate and eta" `Quick test_progress_rate_and_eta;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "export" `Quick test_perfetto_export;
          Alcotest.test_case "extra events merge" `Quick
            test_perfetto_extra_merge;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "measure" `Quick test_runtime_measure;
          Alcotest.test_case "probe metrics and ledger" `Quick
            test_runtime_probe;
          Alcotest.test_case "probe exception safe" `Quick
            test_runtime_probe_exception;
          Alcotest.test_case "profiling switch" `Quick
            test_runtime_profiling_switch;
          Alcotest.test_case "events kill-switch" `Quick
            test_runtime_events_killswitch;
          Alcotest.test_case "events capture" `Quick
            test_runtime_events_capture;
          Alcotest.test_case "events restart" `Quick
            test_runtime_events_restart;
          Alcotest.test_case "span gc profiling" `Quick test_span_gc_profiling;
        ] );
      ( "perf-history",
        [
          Alcotest.test_case "entry json round-trip" `Quick
            test_perf_json_roundtrip;
          Alcotest.test_case "append and read" `Quick test_perf_append_read;
          Alcotest.test_case "analyze and breach" `Quick
            test_perf_analyze_breach;
          Alcotest.test_case "renderings" `Quick test_perf_renderings;
          Alcotest.test_case "ledger digest" `Quick test_perf_ledger_digest;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "recorder basics" `Quick test_conv_recorder_basics;
          Alcotest.test_case "finish idempotent" `Quick
            test_conv_finish_idempotent;
          Alcotest.test_case "with_recording window" `Quick
            test_conv_with_recording;
          Alcotest.test_case "global ring bound" `Quick test_conv_ring_bound;
          Alcotest.test_case "export shapes" `Quick test_conv_export_shapes;
          Alcotest.test_case "metrics and ledger" `Quick
            test_conv_metrics_and_ledger;
          Alcotest.test_case "pp flags stalls" `Quick
            test_conv_pp_not_converged;
        ] );
      ( "ledger-rotation",
        [
          Alcotest.test_case "retention bound" `Quick test_rotation_retention;
          Alcotest.test_case "concurrent domains" `Quick
            test_rotation_concurrent_domains;
          Alcotest.test_case "torn tail" `Quick test_fold_file_torn_tail;
          Alcotest.test_case "flush batching" `Quick test_flush_batching;
          Alcotest.test_case "index sidecar seeks" `Quick
            test_index_sidecar_seek;
        ] );
      ( "ledger-query",
        [
          Alcotest.test_case "aggregation goldens" `Quick
            test_query_agg_goldens;
          Alcotest.test_case "filter and group" `Quick test_query_filter_group;
          Alcotest.test_case "grammar" `Quick test_query_parse_grammar;
          Alcotest.test_case "spans rotated segments" `Quick
            test_query_over_segments;
        ] );
      ( "tail",
        [
          Alcotest.test_case "since cursor truncation" `Quick
            test_since_cursor_truncation;
          Alcotest.test_case "wait_since timeout" `Quick
            test_wait_since_timeout;
          Alcotest.test_case "/tail route" `Quick test_tail_route;
        ] );
      ( "perf-drift",
        [
          Alcotest.test_case "detect and attribute" `Quick
            test_perf_detect_drift;
        ] );
      ( "build-info",
        [ Alcotest.test_case "gauge" `Quick test_build_info ] );
      ( "stats-histogram",
        [ Alcotest.test_case "golden" `Quick test_stats_histogram_golden ] );
      ( "integration",
        [
          Alcotest.test_case "spectral solve metrics" `Quick
            test_spectral_solve_metrics;
        ] );
    ]
